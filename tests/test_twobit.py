"""Unit tests for the 2Bit-Protocol state machines (repro.core.twobit).

The tests drive the sender/receiver/blocker state machines directly through a
tiny single-hop channel harness, covering the honest exchange for every bit
pair and the Theorem 1 properties under hand-crafted adversarial interference.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.twobit import (
    NUM_PHASES,
    TwoBitBlocker,
    TwoBitOutcome,
    TwoBitReceiver,
    TwoBitSender,
)


def run_single_hop(sender, receivers, adversary_broadcasts=None, blockers=None):
    """Drive one 2Bit exchange on an ideal single-hop channel.

    ``adversary_broadcasts`` is a set of phases during which a Byzantine device
    broadcasts; everyone shares one collision domain, so a round is busy for a
    participant iff someone *else* broadcast during it.
    """
    adversary_broadcasts = set(adversary_broadcasts or ())
    blockers = list(blockers or ())
    participants = [sender] + list(receivers) + blockers
    for phase in range(NUM_PHASES):
        transmitted = {id(p) for p in participants if p.action(phase)}
        adversary_on = phase in adversary_broadcasts
        for p in participants:
            if id(p) in transmitted:
                continue  # a broadcasting device does not listen in the same round
            others_busy = adversary_on or any(t != id(p) for t in transmitted)
            p.observe(phase, others_busy)


class TestHonestExchange:
    @pytest.mark.parametrize("b1,b2", list(itertools.product((0, 1), repeat=2)))
    def test_all_pairs_delivered(self, b1, b2):
        sender = TwoBitSender(b1, b2)
        receivers = [TwoBitReceiver() for _ in range(3)]
        run_single_hop(sender, receivers)
        assert sender.outcome() is TwoBitOutcome.SUCCESS
        for r in receivers:
            assert r.outcome() is TwoBitOutcome.SUCCESS
            assert r.result() == (b1, b2)

    def test_single_receiver(self):
        sender = TwoBitSender(1, 0)
        receiver = TwoBitReceiver()
        run_single_hop(sender, [receiver])
        assert receiver.result() == (1, 0)

    def test_sender_does_not_veto_on_clean_run(self):
        sender = TwoBitSender(1, 1)
        run_single_hop(sender, [TwoBitReceiver()])
        assert not sender.veto_sent

    def test_outcome_pending_before_completion(self):
        sender = TwoBitSender(1, 1)
        receiver = TwoBitReceiver()
        assert sender.outcome() is TwoBitOutcome.PENDING
        assert receiver.outcome() is TwoBitOutcome.PENDING

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            TwoBitSender(2, 0)
        with pytest.raises(ValueError):
            TwoBitSender(0, -1)


class TestListenDeclarations:
    def test_sender_listens_on_ack_and_final_rounds(self):
        sender = TwoBitSender(0, 0)
        assert [sender.listens(p) for p in range(NUM_PHASES)] == [False, True, False, True, False, True]

    def test_receiver_listens_on_data_and_veto_rounds(self):
        receiver = TwoBitReceiver()
        assert [receiver.listens(p) for p in range(NUM_PHASES)] == [True, False, True, False, True, False]

    def test_blocker_listens_before_veto(self):
        blocker = TwoBitBlocker(always=False)
        assert [blocker.listens(p) for p in range(NUM_PHASES)] == [True, True, True, True, False, False]


class TestAdversarialInterference:
    """Theorem 1: authenticity and the failure/energy trade-off."""

    def test_spoofed_zero_bit_causes_failure_not_corruption(self):
        # Sender sends (0, 0); adversary broadcasts during R1 to fake a '1'.
        sender = TwoBitSender(0, 0)
        receivers = [TwoBitReceiver() for _ in range(2)]
        run_single_hop(sender, receivers, adversary_broadcasts={0})
        # The receivers ack, the sender notices the unexpected ack and vetoes.
        assert sender.veto_sent
        for r in receivers:
            assert r.outcome() is TwoBitOutcome.FAILURE
            assert r.result() is None

    def test_spoofed_second_bit_causes_failure(self):
        sender = TwoBitSender(1, 0)
        receivers = [TwoBitReceiver()]
        run_single_hop(sender, receivers, adversary_broadcasts={2})
        assert receivers[0].outcome() is TwoBitOutcome.FAILURE

    def test_jammed_ack_causes_sender_detectable_failure(self):
        # Adversary suppresses nothing (it cannot), but jamming the veto round
        # makes every receiver fail and be aware of it.
        sender = TwoBitSender(1, 1)
        receivers = [TwoBitReceiver() for _ in range(2)]
        run_single_hop(sender, receivers, adversary_broadcasts={4})
        for r in receivers:
            assert r.outcome() is TwoBitOutcome.FAILURE
        # The receivers relay the veto, so the sender fails as well (termination
        # property: the sender only succeeds if every honest receiver did).
        assert sender.outcome() is TwoBitOutcome.FAILURE

    def test_jammed_final_round_hurts_only_the_sender(self):
        sender = TwoBitSender(1, 1)
        receivers = [TwoBitReceiver()]
        run_single_hop(sender, receivers, adversary_broadcasts={5})
        # Receivers already decided by round 5; they keep the correct bits.
        assert receivers[0].result() == (1, 1)
        # The sender conservatively retries, which is safe (receivers ignore
        # the repetition thanks to the parity bit of the 1Hop layer).
        assert sender.outcome() is TwoBitOutcome.FAILURE

    def test_forged_ack_on_silent_bit_triggers_sender_veto(self):
        # Sender sends (0, 1): adversary forges an ack in R2 for the silent bit.
        sender = TwoBitSender(0, 1)
        receivers = [TwoBitReceiver()]
        run_single_hop(sender, receivers, adversary_broadcasts={1})
        assert sender.veto_sent
        assert receivers[0].outcome() is TwoBitOutcome.FAILURE

    @pytest.mark.parametrize("b1,b2", list(itertools.product((0, 1), repeat=2)))
    @pytest.mark.parametrize("attack_phases", [(0,), (1,), (2,), (3,), (4,), (0, 2), (1, 3), (0, 1, 2, 3, 4)])
    def test_authenticity_under_any_single_attack(self, b1, b2, attack_phases):
        """A receiver that succeeds always reports exactly the sent pair."""
        sender = TwoBitSender(b1, b2)
        receivers = [TwoBitReceiver() for _ in range(3)]
        run_single_hop(sender, receivers, adversary_broadcasts=set(attack_phases))
        for r in receivers:
            if r.outcome() is TwoBitOutcome.SUCCESS:
                assert r.result() == (b1, b2)

    @pytest.mark.parametrize("b1,b2", list(itertools.product((0, 1), repeat=2)))
    @pytest.mark.parametrize("attack_phases", [(0,), (3,), (4,), (5,), (2, 4)])
    def test_termination_sender_success_implies_receiver_success(self, b1, b2, attack_phases):
        sender = TwoBitSender(b1, b2)
        receivers = [TwoBitReceiver() for _ in range(3)]
        run_single_hop(sender, receivers, adversary_broadcasts=set(attack_phases))
        if sender.outcome() is TwoBitOutcome.SUCCESS:
            for r in receivers:
                assert r.outcome() is TwoBitOutcome.SUCCESS
                assert r.result() == (b1, b2)

    def test_energy_failure_requires_adversarial_broadcast(self):
        """Without any Byzantine broadcast the exchange always succeeds."""
        for b1, b2 in itertools.product((0, 1), repeat=2):
            sender = TwoBitSender(b1, b2)
            receivers = [TwoBitReceiver() for _ in range(4)]
            run_single_hop(sender, receivers)
            assert sender.outcome() is TwoBitOutcome.SUCCESS
            assert all(r.outcome() is TwoBitOutcome.SUCCESS for r in receivers)


class TestBlocker:
    def test_always_blocker_vetoes_both_rounds(self):
        blocker = TwoBitBlocker(always=True)
        actions = [blocker.action(p) for p in range(NUM_PHASES)]
        assert actions == [False, False, False, False, True, True]
        assert blocker.blocked

    def test_conditional_blocker_stays_silent_when_channel_silent(self):
        blocker = TwoBitBlocker(always=False)
        for phase in range(4):
            blocker.observe(phase, False)
        assert not blocker.action(4)
        assert not blocker.action(5)
        assert not blocker.blocked

    def test_conditional_blocker_vetoes_after_activity(self):
        blocker = TwoBitBlocker(always=False)
        blocker.observe(0, True)
        assert blocker.action(4)
        assert blocker.action(5)

    def test_blocker_defeats_rogue_sender(self):
        """A sender sharing a square with a blocker cannot push data through."""
        rogue = TwoBitSender(1, 0)
        receivers = [TwoBitReceiver() for _ in range(2)]
        blocker = TwoBitBlocker(always=False)
        run_single_hop(rogue, receivers, blockers=[blocker])
        assert blocker.blocked
        for r in receivers:
            assert r.outcome() is TwoBitOutcome.FAILURE
        assert rogue.outcome() is TwoBitOutcome.FAILURE

    def test_idle_blocker_prevents_silent_slot_acceptance(self):
        """With only a blocker present, receivers never accept anything."""
        blocker = TwoBitBlocker(always=True)
        receivers = [TwoBitReceiver()]
        # no sender at all: run the phases manually
        participants = [blocker] + receivers
        for phase in range(NUM_PHASES):
            transmitted = {id(p) for p in participants if p.action(phase)}
            for p in participants:
                if id(p) in transmitted:
                    continue
                p.observe(phase, any(t != id(p) for t in transmitted))
        assert receivers[0].outcome() is TwoBitOutcome.FAILURE
