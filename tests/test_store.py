"""Tests for the result store: records, fingerprints, cache, resumability, CLI."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import run_points
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.base import PointResult
from repro.experiments.factories import RandomLiarFactory, UniformDeploymentFactory
from repro.sim.config import ScenarioConfig
from repro.sim.results import METADATA_FIELDS, NodeOutcome, RunResult, validate_metadata
from repro.sim.runner import SweepExecutor, SweepTask
from repro.store import SCHEMA_VERSION, CachingSweepExecutor, ResultStore


def small_task(repetitions: int = 2, **config_overrides) -> SweepTask:
    config_kwargs = {"protocol": "neighborwatch", "radius": 3.0, "message_length": 2}
    config_kwargs.update(config_overrides)
    config = ScenarioConfig(**config_kwargs)
    return SweepTask(
        label="store-small",
        deployment_factory=UniformDeploymentFactory(50, 6.0, 6.0),
        config=config,
        fault_factory=RandomLiarFactory(2),
        repetitions=repetitions,
        base_seed=11,
    )


# -- hypothesis strategies -------------------------------------------------------------
outcome_strategy = st.builds(
    NodeOutcome,
    node_id=st.integers(min_value=0, max_value=10_000),
    honest=st.booleans(),
    active=st.booleans(),
    delivered=st.booleans(),
    correct=st.one_of(st.none(), st.booleans()),
    delivery_round=st.one_of(st.none(), st.integers(min_value=0, max_value=10**7)),
    broadcasts=st.integers(min_value=0, max_value=10**6),
)


@st.composite
def run_result_strategy(draw):
    outcomes = draw(
        st.lists(outcome_strategy, max_size=12, unique_by=lambda o: o.node_id)
    )
    metadata_keys = draw(
        st.lists(st.sampled_from(sorted(METADATA_FIELDS)), unique=True, max_size=6)
    )
    metadata = {}
    for key in metadata_keys:
        if METADATA_FIELDS[key] is str:
            metadata[key] = draw(st.text(max_size=8))
        elif METADATA_FIELDS[key] is float:
            metadata[key] = draw(
                st.floats(allow_nan=False, allow_infinity=False, width=64)
            )
        else:
            metadata[key] = draw(st.integers(min_value=0, max_value=10**9))
    return RunResult(
        message=tuple(draw(st.lists(st.integers(0, 1), min_size=1, max_size=8))),
        total_rounds=draw(st.integers(min_value=0, max_value=10**8)),
        terminated=draw(st.booleans()),
        outcomes={o.node_id: o for o in outcomes},
        metadata=metadata,
    )


class TestRecords:
    @given(outcome=outcome_strategy)
    @settings(max_examples=50, deadline=None)
    def test_node_outcome_round_trip(self, outcome):
        assert NodeOutcome.from_record(outcome.to_record()) == outcome

    @given(result=run_result_strategy())
    @settings(max_examples=50, deadline=None)
    def test_run_result_round_trip_preserves_every_metric(self, result):
        # Through JSON, as the on-disk store does — not just through dicts.
        clone = RunResult.from_record(json.loads(json.dumps(result.to_record())))
        assert clone == result
        assert clone.summary() == result.summary()
        assert clone.completion_rounds == result.completion_rounds
        assert clone.total_broadcasts == result.total_broadcasts
        assert clone.any_incorrect_delivery == result.any_incorrect_delivery

    def test_aggregate_only_record_is_compact_but_not_reconstructible(self):
        result = SweepExecutor(0).run_task(small_task(repetitions=1))[0]
        compact = result.to_record(aggregate_only=True)
        assert "outcomes" not in compact
        assert compact["summary"] == dict(result.summary())
        with pytest.raises(ValueError, match="aggregate-only"):
            RunResult.from_record(compact)

    def test_version_mismatch_rejected(self):
        record = RunResult(message=(1,), total_rounds=0, terminated=True).to_record()
        record["version"] = 999
        with pytest.raises(ValueError, match="version"):
            RunResult.from_record(record)

    def test_metadata_schema_enforced(self):
        with pytest.raises(ValueError, match="unknown RunResult metadata key"):
            validate_metadata({"surprise": 1})
        with pytest.raises(ValueError, match="must be"):
            validate_metadata({"protocol": 7})
        with pytest.raises(ValueError, match="must be"):
            validate_metadata({"num_nodes": True})  # bools are not node counts
        # Ints are accepted for float fields (JSON does not distinguish).
        assert validate_metadata({"radius": 4}) == {"radius": 4.0}
        # Non-strict keeps unknown keys (forward compatibility on read).
        assert validate_metadata({"surprise": 1}, strict=False) == {"surprise": 1}

    def test_run_scenario_metadata_matches_declared_schema(self):
        result = SweepExecutor(0).run_task(small_task(repetitions=1))[0]
        assert set(result.metadata) == set(METADATA_FIELDS)


class TestFingerprint:
    def test_stable_and_distinct_across_repetitions(self):
        task = small_task(repetitions=3)
        fingerprints = [task.fingerprint(i) for i in range(3)]
        assert fingerprints == [task.fingerprint(i) for i in range(3)]
        assert len(set(fingerprints)) == 3
        assert all(len(fp) == 64 for fp in fingerprints)

    def test_sensitive_to_what_determines_the_run(self):
        base = small_task()
        assert small_task(radius=3.5).fingerprint(0) != base.fingerprint(0)
        assert small_task(idle_veto=False).fingerprint(0) != base.fingerprint(0)
        bigger_map = SweepTask(
            label=base.label,
            deployment_factory=UniformDeploymentFactory(50, 7.0, 7.0),
            config=base.config,
            fault_factory=base.fault_factory,
            repetitions=base.repetitions,
            base_seed=base.base_seed,
        )
        assert bigger_map.fingerprint(0) != base.fingerprint(0)

    def test_insensitive_to_presentation(self):
        base = small_task()
        relabelled = SweepTask(
            label="a totally different label",
            deployment_factory=base.deployment_factory,
            config=base.config,
            fault_factory=base.fault_factory,
            repetitions=base.repetitions + 3,  # growing a sweep reuses old runs
            base_seed=base.base_seed,
            extra={"column": 123},
        )
        assert relabelled.fingerprint(0) == base.fingerprint(0)

    def test_unpicklable_factory_rejected(self):
        task = SweepTask(
            label="closure",
            deployment_factory=lambda seed: None,
            config=ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=2),
        )
        with pytest.raises(TypeError, match="fingerprint"):
            task.fingerprint(0)

    def test_out_of_range_repetition(self):
        with pytest.raises(ValueError):
            small_task(repetitions=2).fingerprint(2)


class TestResultStore:
    def test_put_get_round_trip_across_instances(self, tmp_path):
        task = small_task(repetitions=1)
        result = SweepExecutor(0).run_task(task)[0]
        fingerprint = task.fingerprint(0)

        store = ResultStore(tmp_path / "cache")
        assert store.get(fingerprint) is None
        store.put(fingerprint, result)
        assert store.contains(fingerprint)
        assert store.get(fingerprint) == result
        # A brand-new instance reads the same bytes back from disk.
        reopened = ResultStore(tmp_path / "cache")
        assert reopened.get(fingerprint) == result
        assert len(reopened) == 1
        assert list(reopened.fingerprints()) == [fingerprint]

    def test_stats_track_hits_misses_writes(self, tmp_path):
        task = small_task(repetitions=1)
        result = SweepExecutor(0).run_task(task)[0]
        store = ResultStore(tmp_path)
        store.get(task.fingerprint(0))
        store.put(task.fingerprint(0), result)
        store.get(task.fingerprint(0))
        assert store.stats.snapshot() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "torn_lines": 0,
            "checksum_failures": 0,
        }

    def test_schema_version_mismatch_refused(self, tmp_path):
        (tmp_path / "store-meta.json").write_text(json.dumps({"schema_version": 0}))
        with pytest.raises(ValueError, match="schema version"):
            ResultStore(tmp_path)

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        task = small_task(repetitions=1)
        result = SweepExecutor(0).run_task(task)[0]
        fingerprint = task.fingerprint(0)
        store = ResultStore(tmp_path)
        store.put(fingerprint, result)
        shard_path = next((tmp_path / "shards").glob("*.jsonl"))
        with open(shard_path, "a", encoding="utf8") as handle:
            handle.write('{"v": 1, "fp": "dead', )  # simulated crash mid-append
        reopened = ResultStore(tmp_path)
        assert reopened.get(fingerprint) == result
        assert len(reopened) == 1

    def test_prune_evicts_oldest_first(self, tmp_path):
        task = small_task(repetitions=3)
        runs = SweepExecutor(0).run_task(task)
        store = ResultStore(tmp_path)
        for repetition, result in enumerate(runs):
            store.put(task.fingerprint(repetition), result)
        # Touch repetition 0 so it is the most recently used.
        store.get(task.fingerprint(0))
        assert store.prune(2) == 1
        assert store.contains(task.fingerprint(0))
        assert not store.contains(task.fingerprint(1))  # oldest untouched entry
        assert store.contains(task.fingerprint(2))
        # The pruned state is what a fresh instance sees, too.
        assert len(ResultStore(tmp_path)) == 2
        assert store.prune(2) == 0  # already small enough

    def test_clear(self, tmp_path):
        task = small_task(repetitions=1)
        store = ResultStore(tmp_path)
        store.put(task.fingerprint(0), SweepExecutor(0).run_task(task)[0])
        store.clear()
        assert len(store) == 0
        assert ResultStore(tmp_path).get(task.fingerprint(0)) is None

    def test_readonly_refuses_writes(self, tmp_path):
        task = small_task(repetitions=1)
        result = SweepExecutor(0).run_task(task)[0]
        ResultStore(tmp_path).put(task.fingerprint(0), result)
        readonly = ResultStore(tmp_path, readonly=True)
        assert readonly.get(task.fingerprint(0)) == result
        with pytest.raises(PermissionError):
            readonly.put(task.fingerprint(0), result)
        with pytest.raises(PermissionError):
            readonly.prune(0)


class TestCachingSweepExecutor:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_warm_cache_byte_identical_for_every_worker_count(self, tmp_path, workers):
        """The tentpole acceptance criterion: a warm cache reproduces the
        plain executor's results exactly, and dispatches zero simulations."""
        tasks = [small_task(repetitions=2), small_task(repetitions=2, idle_veto=False)]
        plain = SweepExecutor(0).run(tasks)

        store = ResultStore(tmp_path)
        with SweepExecutor(workers) as inner:
            caching = CachingSweepExecutor(store, inner)
            cold = caching.run(tasks)
            assert store.stats.misses == 4 and store.stats.writes == 4

            warm_store = ResultStore(tmp_path)
            warm = CachingSweepExecutor(warm_store, inner).run(tasks)
            assert warm_store.stats.hits == 4
            assert warm_store.stats.misses == 0  # zero simulations dispatched

        for plain_runs, cold_runs, warm_runs in zip(plain, cold, warm):
            for plain_run, cold_run, warm_run in zip(plain_runs, cold_runs, warm_runs):
                assert plain_run == cold_run == warm_run
                assert (
                    json.dumps(plain_run.to_record(), sort_keys=True)
                    == json.dumps(warm_run.to_record(), sort_keys=True)
                )

    def test_interrupted_sweep_resumes_from_persisted_repetitions(self, tmp_path):
        """Persisting completions as they land means a partial cache — as an
        interrupt leaves behind — is picked up, not recomputed."""
        task = small_task(repetitions=3)
        # Simulate an interrupted sweep: only repetition 0 made it to disk.
        interrupted = ResultStore(tmp_path)
        interrupted.put(task.fingerprint(0), SweepExecutor(0).run([small_task(repetitions=1)])[0][0])

        store = ResultStore(tmp_path)
        resumed = CachingSweepExecutor(store).run([task])
        assert store.stats.hits == 1  # repetition 0 came from disk
        assert store.stats.misses == 2  # only 1 and 2 were simulated
        assert resumed[0] == SweepExecutor(0).run([task])[0]

    def test_run_points_accepts_store(self, tmp_path):
        tasks = [small_task(repetitions=2)]
        uncached = run_points(tasks)
        store = ResultStore(tmp_path)
        cold = run_points(tasks, store=store)
        warm = run_points(tasks, store=store)
        assert store.stats.misses == 2 and store.stats.hits == 2
        for a, b, c in zip(uncached, cold, warm):
            assert a.aggregates == b.aggregates == c.aggregates
            assert a.runs == b.runs == c.runs

    def test_delegates_executor_surface(self, tmp_path):
        with SweepExecutor(2, chunk_size=3) as inner:
            caching = CachingSweepExecutor(ResultStore(tmp_path), inner)
            assert caching.workers == 2
            assert caching.chunk_size == 3
            assert caching.parallel
            caching.close()  # borrowed executor: close must be a no-op
            inner.run([small_task(repetitions=1)])  # still usable afterwards


class TestPointResultRecords:
    def test_round_trip_through_json(self):
        point = run_points([small_task(repetitions=2)])[0]
        clone = PointResult.from_record(json.loads(json.dumps(point.to_record())))
        assert clone.label == point.label
        assert clone.repetitions == point.repetitions
        assert dict(clone.aggregates) == dict(point.aggregates)
        assert clone.runs == point.runs
        assert clone.row() == point.row()

    def test_aggregate_only_smaller_and_version_checked(self):
        point = run_points([small_task(repetitions=2)])[0]
        full = json.dumps(point.to_record())
        compact = json.dumps(point.to_record(aggregate_only=True))
        assert len(compact) < len(full)
        bad = point.to_record()
        bad["version"] = 999
        with pytest.raises(ValueError, match="version"):
            PointResult.from_record(bad)


class TestCliCache:
    def run_cli(self, capsys, *argv) -> tuple[int, str, str]:
        code = experiments_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_warm_rerun_byte_identical_and_dispatches_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code, cold_out, _ = self.run_cli(
            capsys, "DUAL", "--scale", "small", "--cache-dir", cache, "--export", "json"
        )
        assert code == 0
        code, warm_out, warm_err = self.run_cli(
            capsys, "DUAL", "--scale", "small", "--cache-dir", cache, "--resume", "--export", "json"
        )
        assert code == 0
        assert warm_out == cold_out  # byte-identical rows
        assert "cache-misses=0" in warm_err  # zero simulations dispatched
        json.loads(warm_out)  # and it is valid JSON

    def test_export_csv(self, tmp_path, capsys):
        code, out, err = self.run_cli(
            capsys, "DUAL", "--scale", "small", "--export", "csv"
        )
        assert code == 0
        assert "overhead_factor" in out.splitlines()[0]  # CSV header on stdout
        assert "DUAL" in err  # status lines on stderr

    def test_no_cache_skips_the_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code, out, err = self.run_cli(
            capsys, "DUAL", "--scale", "small", "--cache-dir", cache, "--no-cache"
        )
        assert code == 0
        assert "cache-hits" not in out + err
        assert not (tmp_path / "cache").exists()

    def test_resume_requires_existing_cache_dir(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            capsys,
            "DUAL",
            "--scale",
            "small",
            "--cache-dir",
            str(tmp_path / "never-created"),
            "--resume",
        )
        assert code == 2
        assert "nothing to resume" in err

    def test_resume_without_cache_dir_is_an_error(self, capsys):
        code, _, err = self.run_cli(capsys, "DUAL", "--scale", "small", "--resume")
        assert code == 2
        assert "--resume requires --cache-dir" in err


def test_schema_version_is_two_and_v1_still_supported():
    """Bumping SCHEMA_VERSION must be deliberate — and must not orphan old caches:
    version 1 (pre-checksum) stays in the supported set so existing shards replay."""
    from repro.store import SUPPORTED_SCHEMA_VERSIONS

    assert SCHEMA_VERSION == 2
    assert SUPPORTED_SCHEMA_VERSIONS == (1, 2)
