"""Tests for store integrity: checksums, damage counters, verify/repair, chaos e2e.

The store's integrity story has three layers, each tested here: the loader
*tolerates* damage (skips + counts + warns), the offline CLI *removes* it
(quarantine + atomic rewrite), and the chaos backend *creates* it on demand —
so the acceptance scenario at the bottom can kill a worker, time out a
repetition and tear a shard in one sweep, then assert the results are still
byte-identical to a fault-free run.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.factories import RandomLiarFactory, UniformDeploymentFactory
from repro.sim.backends import ChaosBackend, ChaosPlan, FaultSpec, ProcessPoolBackend
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepExecutor, SweepTask
from repro.sim.supervision import SweepInterrupted
from repro.store import (
    CachingSweepExecutor,
    ResultStore,
    StoreIntegrityWarning,
    repair_store,
    scan_store,
)
from repro.store.__main__ import main as store_main
from repro.store.integrity import quarantine_path
from repro.store.store import ShardLineError, parse_shard_line, record_checksum


def small_task(repetitions: int = 2, **config_overrides) -> SweepTask:
    config_kwargs = {"protocol": "neighborwatch", "radius": 3.0, "message_length": 2}
    config_kwargs.update(config_overrides)
    return SweepTask(
        label="integrity-small",
        deployment_factory=UniformDeploymentFactory(40, 6.0, 6.0),
        config=ScenarioConfig(**config_kwargs),
        fault_factory=RandomLiarFactory(2),
        repetitions=repetitions,
        base_seed=31,
    )


def populate(cache_dir, task) -> list:
    """Run ``task`` through a caching executor; returns the results."""
    store = ResultStore(cache_dir)
    return CachingSweepExecutor(store, SweepExecutor(0)).run_task(task)


def shard_files(cache_dir):
    return sorted((cache_dir / "shards").glob("*.jsonl"))


# -- checksummed line format -----------------------------------------------------------
class TestChecksummedLines:
    def test_v2_lines_carry_a_crc_and_round_trip(self, tmp_path):
        task = small_task(repetitions=1)
        expected = populate(tmp_path, task)
        [shard] = shard_files(tmp_path)
        obj = json.loads(shard.read_text().strip())
        assert obj["v"] == 2
        assert obj["crc"] == record_checksum(
            obj["fp"], json.dumps(obj["record"], sort_keys=True, separators=(",", ":"))
        )
        reopened = ResultStore(tmp_path)
        assert reopened.get(task.fingerprint(0)) == expected[0]

    def test_flipped_byte_fails_checksum_and_counts(self, tmp_path):
        task = small_task(repetitions=1)
        populate(tmp_path, task)
        [shard] = shard_files(tmp_path)
        # Corrupt one digit inside the record payload, keeping valid JSON.
        shard.write_text(_flip_digit(shard.read_text()))
        store = ResultStore(tmp_path)
        with pytest.warns(StoreIntegrityWarning, match=shard.name):
            assert store.get(task.fingerprint(0)) is None
        assert store.stats.checksum_failures == 1
        assert store.stats.torn_lines == 0

    def test_torn_trailing_line_counts_and_warns(self, tmp_path):
        task = small_task(repetitions=1)
        populate(tmp_path, task)
        [shard] = shard_files(tmp_path)
        data = shard.read_bytes()
        shard.write_bytes(data[:-20])  # crash mid-append
        store = ResultStore(tmp_path)
        with pytest.warns(StoreIntegrityWarning, match="1 torn"):
            assert store.get(task.fingerprint(0)) is None
        assert store.stats.torn_lines == 1

    def test_v1_lines_without_crc_still_load(self, tmp_path):
        task = small_task(repetitions=1)
        expected = populate(tmp_path, task)
        [shard] = shard_files(tmp_path)
        obj = json.loads(shard.read_text().strip())
        # Rewrite the store as a version-1 cache: meta and line, no crc.
        (tmp_path / "store-meta.json").write_text(json.dumps({"schema_version": 1}))
        v1_line = json.dumps(
            {"v": 1, "fp": obj["fp"], "ts": obj["ts"], "record": obj["record"]},
            sort_keys=True,
            separators=(",", ":"),
        )
        shard.write_text(v1_line + "\n")
        store = ResultStore(tmp_path)
        assert store.get(task.fingerprint(0)) == expected[0]
        assert store.stats.torn_lines == 0
        assert store.stats.checksum_failures == 0

    def test_parse_shard_line_classifies_reasons(self):
        with pytest.raises(ShardLineError) as excinfo:
            parse_shard_line("{not json")
        assert excinfo.value.reason == "torn"
        with pytest.raises(ShardLineError) as excinfo:
            parse_shard_line(json.dumps({"v": 99, "fp": "ab", "record": {}}))
        assert excinfo.value.reason == "torn"
        good = {"v": 2, "fp": "abcd", "record": {"x": 1}}
        good["crc"] = record_checksum("abcd", json.dumps({"x": 1}, sort_keys=True, separators=(",", ":")))
        parse_shard_line(json.dumps(good))  # no raise
        good["crc"] = "00000000"
        with pytest.raises(ShardLineError) as excinfo:
            parse_shard_line(json.dumps(good))
        assert excinfo.value.reason == "checksum"


def _flip_digit(text: str) -> str:
    """Flip one digit inside the record payload, keeping the line valid JSON."""
    marker = '"record":'
    start = text.index(marker) + len(marker)
    for index in range(start, len(text)):
        if text[index].isdigit():
            replacement = "1" if text[index] != "1" else "2"
            return text[:index] + replacement + text[index + 1 :]
    raise AssertionError("no digit found in record payload")


# -- verify / repair CLI ---------------------------------------------------------------
class TestVerifyRepair:
    def corrupt_store(self, tmp_path, task):
        """Flip a digit in repetition 0's line and append a torn fragment."""
        expected = populate(tmp_path, task)
        fingerprint = task.fingerprint(0)
        shard = ResultStore(tmp_path).shard_path_for(fingerprint)
        lines = [line for line in shard.read_text().splitlines() if line]
        lines = [
            _flip_digit(line) if json.loads(line)["fp"] == fingerprint else line
            for line in lines
        ]
        lines.append("{torn garbage")
        shard.write_text("\n".join(lines) + "\n")
        return expected, shard

    def run_cli(self, capsys, *argv):
        code = store_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_verify_detects_corruption_and_exits_nonzero(self, tmp_path, capsys):
        self.corrupt_store(tmp_path, small_task())
        code, out, _ = self.run_cli(capsys, "verify", str(tmp_path))
        assert code == 1
        assert "1 torn, 1 checksum-failed" in out

    def test_verify_clean_store_exits_zero(self, tmp_path, capsys):
        populate(tmp_path, small_task())
        code, out, _ = self.run_cli(capsys, "verify", str(tmp_path))
        assert code == 0
        assert "0 torn, 0 checksum-failed" in out

    def test_repair_quarantines_and_restores_a_loadable_store(self, tmp_path, capsys):
        task = small_task()
        expected, shard = self.corrupt_store(tmp_path, task)
        code, out, _ = self.run_cli(capsys, "repair", str(tmp_path))
        assert code == 0
        assert "quarantined 2 line(s)" in out
        # The sidecar holds exactly the damaged raw lines.
        sidecar = quarantine_path(shard)
        quarantined = sidecar.read_text().splitlines()
        assert len(quarantined) == 2
        assert "{torn garbage" in quarantined
        # The repaired store loads warning-free; only the corrupt repetition
        # is gone (repetition 0's line was the one we flipped).
        store = ResultStore(tmp_path)
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", StoreIntegrityWarning)
            assert store.get(task.fingerprint(1)) == expected[1]
            assert store.get(task.fingerprint(0)) is None
        code, _, _ = self.run_cli(capsys, "verify", str(tmp_path))
        assert code == 0

    def test_repair_is_a_no_op_on_clean_stores(self, tmp_path, capsys):
        task = small_task()
        populate(tmp_path, task)
        shards = shard_files(tmp_path)
        before = {shard: shard.read_bytes() for shard in shards}
        code, _, _ = self.run_cli(capsys, "repair", str(tmp_path))
        assert code == 0
        for shard in shards:
            assert shard.read_bytes() == before[shard]  # untouched, not rewritten
            assert not quarantine_path(shard).exists()

    def test_unsupported_meta_version_is_an_error(self, tmp_path, capsys):
        (tmp_path / "store-meta.json").write_text(json.dumps({"schema_version": 99}))
        code, _, err = self.run_cli(capsys, "verify", str(tmp_path))
        assert code == 2
        assert "schema version" in err

    def test_scan_and_repair_python_api(self, tmp_path):
        task = small_task()
        self.corrupt_store(tmp_path, task)
        reports = scan_store(tmp_path)
        assert sum(r.damaged_lines for r in reports) == 2
        repair_store(tmp_path)
        assert sum(r.damaged_lines for r in scan_store(tmp_path)) == 0


# -- interrupt handling ----------------------------------------------------------------
class TestInterrupts:
    def test_interrupt_mid_sweep_reports_progress_and_cache_dir(self, tmp_path):
        task = small_task(repetitions=3)
        store = ResultStore(tmp_path)
        executor = SweepExecutor(0)
        original = executor.iter_jobs

        def interrupt_after_one(jobs):
            iterator = original(jobs)
            yield next(iterator)
            raise KeyboardInterrupt

        executor.iter_jobs = interrupt_after_one
        caching = CachingSweepExecutor(store, executor)
        with pytest.raises(SweepInterrupted) as excinfo:
            caching.run_task(task)
        exc = excinfo.value
        assert isinstance(exc, KeyboardInterrupt)
        assert exc.completed == 1
        assert exc.pending == 2
        assert exc.cache_dir == store.cache_dir
        # The completed repetition is already on disk: a resumed run reuses it.
        resumed_store = ResultStore(tmp_path)
        resumed = CachingSweepExecutor(resumed_store, SweepExecutor(0)).run_task(task)
        assert resumed == SweepExecutor(0).run_task(task)
        assert resumed_store.stats.hits == 1


# -- the acceptance scenario -----------------------------------------------------------
class TestChaosEndToEnd:
    def test_kill_timeout_and_shard_truncation_in_one_sweep(self, tmp_path):
        """ISSUE 8 acceptance: a chaos sweep that kills a worker mid-run,
        times out one repetition and truncates one shard still completes with
        byte-identical RunResults and reports the injected faults."""
        task = small_task(repetitions=4)
        expected = SweepExecutor(0).run_task(task)

        # The delay fault covers attempts 0 *and* 1: even if attempt 0 is
        # swallowed by the broken-pool drain (it races the worker kill), the
        # retry still overruns the budget, so a timeout is guaranteed.
        plan = ChaosPlan(
            faults=(
                FaultSpec(kind="kill-worker", position=0),
                FaultSpec(kind="delay", position=2, attempt=0, seconds=0.4),
                FaultSpec(kind="delay", position=2, attempt=1, seconds=0.4),
                FaultSpec(kind="truncate-shard", position=3),
            )
        )
        executor = SweepExecutor(2, timeout=0.25)
        executor._backend = ChaosBackend(
            ProcessPoolBackend(2, telemetry=executor.telemetry),
            plan,
            telemetry=executor.telemetry,
        )
        store = ResultStore(tmp_path / "cache")
        try:
            survived = CachingSweepExecutor(store, executor).run_task(task)
        finally:
            executor.close()

        # Byte-identical results despite the worker kill, the timeout and the
        # torn shard (the tear lands *after* the in-memory result was yielded).
        assert survived == expected
        telemetry = executor.telemetry
        assert telemetry.injected["kill-worker"] == 1
        assert telemetry.injected["delay"] >= 1
        assert telemetry.injected["truncate-shard"] == 1
        assert telemetry.worker_crashes >= 1
        assert telemetry.pool_rebuilds >= 1
        assert telemetry.timeouts >= 1
        assert telemetry.recovered

        # The truncated shard shows up as damage on a cold reload...
        reopened = ResultStore(tmp_path / "cache")
        with pytest.warns(StoreIntegrityWarning):
            recovered = CachingSweepExecutor(reopened, SweepExecutor(0)).run_task(task)
        # ...and the torn repetition is simply recomputed, bit-identically.
        assert recovered == expected
        assert reopened.stats.torn_lines == 1

        # repair quarantines exactly the torn line; verify then passes.
        reports = repair_store(tmp_path / "cache")
        assert sum(r.damaged_lines for r in reports) == 1
        assert all(r.damaged_lines == 0 for r in scan_store(tmp_path / "cache"))
