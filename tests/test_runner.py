"""Tests for the parallel sweep runner and the experiments CLI."""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import fields
from pathlib import Path

import pytest

from repro.experiments import run_point
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.factories import (
    FixedDeploymentFactory,
    RandomLiarFactory,
    UniformDeploymentFactory,
)
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepExecutor, SweepTask, resolve_workers, run_repetition

REPO_ROOT = Path(__file__).resolve().parent.parent


def small_task(repetitions: int = 3, **config_overrides) -> SweepTask:
    config = ScenarioConfig(
        protocol="neighborwatch", radius=3.0, message_length=2, **config_overrides
    )
    return SweepTask(
        label="small",
        deployment_factory=UniformDeploymentFactory(60, 7.0, 7.0),
        config=config,
        fault_factory=RandomLiarFactory(3),
        repetitions=repetitions,
        base_seed=42,
    )


class TestSweepTask:
    def test_scenario_round_trips_every_config_field(self):
        """Cloning must go through dataclasses.replace: a sentinel value in
        *any* field — including ones added after the runner was written —
        survives into the per-repetition scenario."""
        config = ScenarioConfig(
            protocol="multipath",
            radius=2.5,
            message_length=3,
            message=(1, 0, 1),
            norm="linf",
            capture_probability=0.3125,
            loss_probability=0.0625,
            square_side=1.75,
            multipath_tolerance=2,
            schedule_separation=8.5,
            epidemic_separation=6.5,
            idle_veto=False,
            max_rounds=7777,
            seed=1,
        )
        task = SweepTask(
            label="sentinel",
            deployment_factory=UniformDeploymentFactory(20, 5.0, 5.0),
            config=config,
        )
        clone = task.scenario(seed=99)
        assert clone.seed == 99
        for field_info in fields(ScenarioConfig):
            if field_info.name == "seed":
                continue
            assert getattr(clone, field_info.name) == getattr(config, field_info.name), field_info.name

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            small_task(repetitions=0)

    def test_seeds(self):
        assert list(small_task(repetitions=3).seeds()) == [42, 43, 44]

    def test_run_repetition_bounds(self):
        task = small_task(repetitions=2)
        with pytest.raises(ValueError):
            run_repetition(task, 2)
        with pytest.raises(ValueError):
            run_repetition(task, -1)


class TestSweepExecutor:
    def test_resolve_workers(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            SweepExecutor(0, chunk_size=0)

    def test_serial_executor_spawns_no_pool(self):
        executor = SweepExecutor(1)
        assert not executor.parallel

    def test_parallel_matches_serial_seed_for_seed(self):
        """The acceptance criterion of the runner: workers=4 reproduces the
        serial sweep exactly — same aggregates and same per-run
        delivery_rounds for every seed."""
        tasks = [small_task(repetitions=2), small_task(repetitions=2, idle_veto=False)]
        serial = SweepExecutor(0).run(tasks)
        with SweepExecutor(4, chunk_size=2) as executor:
            parallel = executor.run(
                [small_task(repetitions=2), small_task(repetitions=2, idle_veto=False)]
            )
        assert len(serial) == len(parallel) == 2
        for serial_runs, parallel_runs in zip(serial, parallel):
            for serial_run, parallel_run in zip(serial_runs, parallel_runs):
                assert serial_run.total_rounds == parallel_run.total_rounds
                assert serial_run.terminated == parallel_run.terminated
                assert serial_run.metadata == parallel_run.metadata
                assert serial_run.outcomes == parallel_run.outcomes  # incl. delivery_round

    def test_run_point_accepts_executor(self):
        task = small_task(repetitions=2)
        serial_point = run_point(
            task.label,
            task.deployment_factory,
            task.config,
            fault_factory=task.fault_factory,
            repetitions=task.repetitions,
            base_seed=task.base_seed,
        )
        with SweepExecutor(2) as executor:
            parallel_point = run_point(
                task.label,
                task.deployment_factory,
                task.config,
                fault_factory=task.fault_factory,
                repetitions=task.repetitions,
                base_seed=task.base_seed,
                executor=executor,
            )
        assert serial_point.aggregates == parallel_point.aggregates
        assert [r.outcomes for r in serial_point.runs] == [r.outcomes for r in parallel_point.runs]

    def test_pool_reused_across_runs_and_close_idempotent(self):
        task = small_task(repetitions=2)
        with SweepExecutor(2) as executor:
            first = executor.run([small_task(repetitions=2)])
            pool = executor._pool
            second = executor.run([small_task(repetitions=2)])
            assert executor._pool is pool  # the pool survives between runs
        assert executor._pool is None
        executor.close()  # idempotent
        for first_run, second_run in zip(first[0], second[0]):
            assert first_run.outcomes == second_run.outcomes
        serial = SweepExecutor(0).run([task])
        for serial_run, pooled_run in zip(serial[0], first[0]):
            assert serial_run.outcomes == pooled_run.outcomes

    def test_fixed_deployment_factory_ignores_seed(self):
        from repro.topology.deployment import uniform_deployment

        deployment = uniform_deployment(12, 4.0, 4.0, rng=5)
        factory = FixedDeploymentFactory(deployment)
        assert factory(0) is deployment
        assert factory(123) is deployment


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "FIG5" in out and "DUAL" in out

    def test_no_argument_lists(self, capsys):
        assert experiments_main([]) == 0
        assert "FIG5" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert experiments_main(["FIG99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_smoke_small_scale_with_workers(self, capsys):
        """Tier-1 smoke test of the CLI multiprocessing path: the cheapest
        registered experiment, small scale, two workers."""
        assert experiments_main(["DUAL", "--scale", "small", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "DUAL" in out
        assert "overhead_factor" in out

    def test_profile_out_writes_loadable_pstats(self, capsys, tmp_path):
        """--profile-out (implying --profile) must write a pstats file that
        loads, so profiles can be diffed across PRs instead of eyeballed."""
        import pstats

        path = tmp_path / "dual.pstats"
        assert experiments_main(["DUAL", "--scale", "small", "--profile-out", str(path)]) == 0
        captured = capsys.readouterr()
        assert path.exists()
        assert f"profile written to {path}" in captured.err
        # The stderr top-25 table still prints alongside the dump.
        assert "cumulative" in captured.err
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_smoke_subprocess_entry_point(self):
        """`python -m repro.experiments` must work end-to-end as a module."""
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "DUAL", "--scale", "small", "--workers", "2"],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "overhead_factor" in result.stdout
