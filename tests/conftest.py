"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.config import ScenarioConfig
from repro.sim.engine import clear_link_cache
from repro.topology.deployment import Deployment, grid_jittered_deployment, uniform_deployment


@pytest.fixture(autouse=True)
def _isolated_link_cache():
    """Start every test with an empty engine link-state cache.

    The cache is module-level and keyed by (channel, positions); entries are
    never semantically stale, but tests that assert on hit/miss counts or on
    cached-channel behaviour would otherwise observe entries left behind by
    whichever test happened to run before them.
    """
    clear_link_cache()
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_grid_deployment() -> Deployment:
    """A 7x7 unit grid (49 devices) with the source at the center."""
    return grid_jittered_deployment(6, 6, spacing=1.0)


@pytest.fixture
def tiny_grid_deployment() -> Deployment:
    """A 5x5 unit grid (25 devices) with the source at the center."""
    return grid_jittered_deployment(4, 4, spacing=1.0)


@pytest.fixture
def uniform_small_deployment() -> Deployment:
    """A random uniform deployment dense enough for every protocol to finish."""
    return uniform_deployment(90, 8, 8, rng=7)


@pytest.fixture
def nw_config() -> ScenarioConfig:
    return ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=3, seed=11)


@pytest.fixture
def mp_config() -> ScenarioConfig:
    return ScenarioConfig(
        protocol="multipath", radius=3.0, message_length=2, multipath_tolerance=1, seed=11
    )


@pytest.fixture
def epidemic_config() -> ScenarioConfig:
    return ScenarioConfig(protocol="epidemic", radius=3.0, message_length=3, seed=11)
