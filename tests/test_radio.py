"""Unit tests for the channel models (repro.sim.radio)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.messages import Frame, FrameKind
from repro.core.protocol import ChannelState
from repro.sim.radio import FriisChannel, Transmission, UnitDiskChannel


def tx(sender, x, y, kind=FrameKind.DATA_BIT):
    return Transmission(sender, (float(x), float(y)), Frame(kind, sender))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestUnitDiskChannel:
    def test_silence_with_no_transmitters(self, rng):
        chan = UnitDiskChannel(2.0)
        obs = chan.observe([0, 1], np.array([[0, 0], [1, 1]], float), [], rng)
        assert [o.state for o in obs] == [ChannelState.SILENT, ChannelState.SILENT]

    def test_single_transmitter_in_range_decodes(self, rng):
        chan = UnitDiskChannel(2.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(5, 1.0, 1.0)], rng)
        assert obs[0].state is ChannelState.MESSAGE
        assert obs[0].frame.sender == 5
        assert obs[0].busy

    def test_single_transmitter_out_of_range_is_silent(self, rng):
        chan = UnitDiskChannel(2.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(5, 5.0, 0.0)], rng)
        assert obs[0].state is ChannelState.SILENT
        assert not obs[0].busy

    def test_two_transmitters_collide(self, rng):
        chan = UnitDiskChannel(2.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 1.0, 0.0), tx(2, 0.0, 1.0)], rng)
        assert obs[0].state is ChannelState.COLLISION
        assert obs[0].busy
        assert obs[0].decoded is None

    def test_collision_only_affects_listeners_hearing_both(self, rng):
        chan = UnitDiskChannel(2.0)
        listeners = np.array([[0.0, 0.0], [10.0, 0.0]])
        obs = chan.observe([0, 1], listeners, [tx(1, 1.0, 0.0), tx(2, 9.0, 0.0)], rng)
        assert obs[0].state is ChannelState.MESSAGE
        assert obs[0].frame.sender == 1
        assert obs[1].state is ChannelState.MESSAGE
        assert obs[1].frame.sender == 2

    def test_linf_norm_range(self, rng):
        chan = UnitDiskChannel(2.0, norm="linf")
        # (2, 2) is within L-inf range 2 but outside L2 range 2*sqrt(2) > 2.
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 2.0, 2.0)], rng)
        assert obs[0].state is ChannelState.MESSAGE

    def test_capture_probability_one_always_decodes_something(self, rng):
        chan = UnitDiskChannel(2.0, capture_probability=1.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 1.0, 0.0), tx(2, 0.0, 1.0)], rng)
        assert obs[0].state is ChannelState.MESSAGE
        assert obs[0].frame.sender in (1, 2)

    def test_loss_probability_one_turns_messages_into_collisions(self, rng):
        chan = UnitDiskChannel(2.0, loss_probability=1.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 1.0, 0.0)], rng)
        # The frame is lost but the energy is still sensed: silence is never forged.
        assert obs[0].state is ChannelState.COLLISION

    def test_empty_listener_list(self, rng):
        chan = UnitDiskChannel(2.0)
        assert chan.observe([], np.empty((0, 2)), [tx(1, 0, 0)], rng) == []

    def test_hears(self):
        chan = UnitDiskChannel(2.0)
        assert chan.hears((0, 0), (2, 0))
        assert not chan.hears((0, 0), (2.5, 0))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UnitDiskChannel(0)
        with pytest.raises(ValueError):
            UnitDiskChannel(1, capture_probability=1.5)
        with pytest.raises(ValueError):
            UnitDiskChannel(1, loss_probability=-0.1)
        with pytest.raises(ValueError):
            UnitDiskChannel(1, norm="manhattan")


class TestFriisChannel:
    def test_lone_transmission_within_range_decodes(self, rng):
        chan = FriisChannel(reception_range=4.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 3.0, 0.0)], rng)
        assert obs[0].state is ChannelState.MESSAGE

    def test_lone_transmission_beyond_sense_range_is_silent(self, rng):
        chan = FriisChannel(reception_range=4.0, sense_range_factor=1.5)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 10.0, 0.0)], rng)
        assert obs[0].state is ChannelState.SILENT

    def test_transmission_in_grey_zone_is_sensed_but_not_decoded(self, rng):
        chan = FriisChannel(reception_range=4.0, sense_range_factor=2.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 6.0, 0.0)], rng)
        assert obs[0].state is ChannelState.COLLISION

    def test_capture_effect_near_far(self, rng):
        """A much closer transmitter captures the channel despite interference."""
        chan = FriisChannel(reception_range=4.0, capture_threshold_db=6.0)
        obs = chan.observe(
            [0], np.array([[0.0, 0.0]]), [tx(1, 1.0, 0.0), tx(2, 4.0, 0.0)], rng
        )
        assert obs[0].state is ChannelState.MESSAGE
        assert obs[0].frame.sender == 1

    def test_comparable_powers_collide(self, rng):
        chan = FriisChannel(reception_range=4.0, capture_threshold_db=6.0)
        obs = chan.observe(
            [0], np.array([[0.0, 0.0]]), [tx(1, 2.0, 0.0), tx(2, 0.0, 2.0)], rng
        )
        assert obs[0].state is ChannelState.COLLISION

    def test_sense_range_property(self):
        chan = FriisChannel(reception_range=4.0, sense_range_factor=1.5)
        assert chan.sense_range == pytest.approx(6.0)
        assert chan.hears((0, 0), (5.9, 0))
        assert not chan.hears((0, 0), (6.2, 0))

    def test_loss_probability(self, rng):
        chan = FriisChannel(reception_range=4.0, loss_probability=1.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [tx(1, 1.0, 0.0)], rng)
        assert obs[0].state is ChannelState.COLLISION

    def test_no_transmitters(self, rng):
        chan = FriisChannel(reception_range=4.0)
        obs = chan.observe([0], np.array([[0.0, 0.0]]), [], rng)
        assert obs[0].state is ChannelState.SILENT

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FriisChannel(0)
        with pytest.raises(ValueError):
            FriisChannel(4, path_loss_exponent=0)
        with pytest.raises(ValueError):
            FriisChannel(4, sense_range_factor=0.5)
        with pytest.raises(ValueError):
            FriisChannel(4, loss_probability=2.0)

    def test_power_monotonically_decreasing(self):
        chan = FriisChannel(reception_range=4.0)
        powers = [chan._power_at(d) for d in (1.0, 2.0, 4.0, 8.0)]
        assert powers == sorted(powers, reverse=True)

    def test_reception_threshold_consistent_with_range(self):
        chan = FriisChannel(reception_range=4.0)
        assert chan._power_at(4.0) == pytest.approx(chan.reception_threshold)
        assert chan._power_at(4.5) < chan.reception_threshold


class TestLinkStateEquivalence:
    """observe_links over a precomputed link state must reproduce observe()
    exactly — same observations, same RNG consumption — for every channel."""

    @staticmethod
    def _random_round(rng, num_nodes=40, num_tx=3):
        positions = rng.uniform(0, 10, size=(num_nodes, 2))
        tx_ids = list(rng.choice(num_nodes, size=num_tx, replace=False))
        listener_ids = [i for i in range(num_nodes) if i not in tx_ids]
        transmissions = [
            Transmission(int(t), (float(positions[t, 0]), float(positions[t, 1])),
                         Frame(FrameKind.DATA_BIT, int(t)))
            for t in tx_ids
        ]
        return positions, listener_ids, transmissions

    @pytest.mark.parametrize(
        "channel_factory",
        [
            lambda: UnitDiskChannel(3.0),
            lambda: UnitDiskChannel(3.0, norm="linf"),
            lambda: UnitDiskChannel(3.0, capture_probability=0.5, loss_probability=0.3),
            lambda: FriisChannel(reception_range=3.0, loss_probability=0.3),
        ],
    )
    def test_observe_links_matches_observe(self, channel_factory):
        setup_rng = np.random.default_rng(7)
        chan = channel_factory()
        for trial in range(5):
            positions, listener_ids, transmissions = self._random_round(setup_rng)
            state = chan.link_state(positions)
            direct = chan.observe(
                listener_ids, positions[listener_ids], transmissions, np.random.default_rng(trial)
            )
            via_links = chan.observe_links(
                listener_ids, state, transmissions, np.random.default_rng(trial)
            )
            assert direct == via_links

    def test_link_signature_distinguishes_parameters(self):
        assert UnitDiskChannel(3.0).link_signature() != UnitDiskChannel(4.0).link_signature()
        assert UnitDiskChannel(3.0).link_signature() != UnitDiskChannel(3.0, norm="linf").link_signature()
        assert FriisChannel(3.0).link_signature() is not None

    def test_link_state_blocked_construction_matches_direct(self):
        # Exercise the block boundary: more nodes than one 512-row block.
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 40, size=(600, 2))
        chan = UnitDiskChannel(3.0)
        state = chan.link_state(positions)
        expected = chan._distances(positions, positions) <= 3.0 + 1e-12
        assert np.array_equal(state, expected)


class TestLinkStateMemoryBudget:
    """The dense link-state byte budget must refuse quadratic allocations with
    a message that names the sparse/tiled escape hatch."""

    def test_budget_exceeded_names_the_tiling_knob(self, monkeypatch):
        from repro.sim.radio import LinkStateMemoryError

        monkeypatch.setenv("REPRO_LINK_STATE_MAX_BYTES", "1024")
        chan = UnitDiskChannel(2.0)
        positions = np.zeros((64, 2))  # 64*64 = 4096 bytes > 1024
        with pytest.raises(LinkStateMemoryError) as excinfo:
            chan.link_state(positions)
        message = str(excinfo.value)
        assert "use_spatial_tiling" in message
        assert "REPRO_SPATIAL_TILING" in message
        assert "REPRO_LINK_STATE_MAX_BYTES" in message

    def test_friis_budget_counts_eight_bytes_per_pair(self, monkeypatch):
        from repro.sim.radio import LinkStateMemoryError

        monkeypatch.setenv("REPRO_LINK_STATE_MAX_BYTES", "10000")
        positions = np.random.default_rng(0).uniform(0, 5, size=(40, 2))
        # 40*40*1 = 1600 bytes fits for unitdisk ...
        assert UnitDiskChannel(2.0).link_state(positions) is not None
        # ... but 40*40*8 = 12800 bytes does not for friis.
        with pytest.raises(LinkStateMemoryError):
            FriisChannel(2.0).link_state(positions)

    def test_budget_disabled_with_nonpositive_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINK_STATE_MAX_BYTES", "0")
        assert UnitDiskChannel(2.0).link_state(np.zeros((64, 2))) is not None

    def test_sparse_tier_is_not_budgeted(self, monkeypatch):
        from repro.sim.linkstate import UnitDiskLinkState

        monkeypatch.setenv("REPRO_LINK_STATE_MAX_BYTES", "1024")
        positions = np.random.default_rng(1).uniform(0, 20, size=(64, 2))
        state = UnitDiskChannel(2.0).link_state_sparse(positions)
        assert isinstance(state, UnitDiskLinkState)
        assert state.nnz < 64 * 64


class TestSparseLinkState:
    """Sparse link states must recompute exact dense blocks from positions."""

    @pytest.mark.parametrize("norm", ["l2", "linf"])
    def test_unitdisk_submatrix_bitwise_equal(self, norm):
        rng = np.random.default_rng(11)
        positions = rng.uniform(0, 15, size=(120, 2))
        chan = UnitDiskChannel(3.0, norm=norm)
        dense = chan.link_state(positions)
        sparse = chan.link_state_sparse(positions)
        listeners = list(range(0, 120, 3))
        senders = list(range(1, 120, 7))
        assert np.array_equal(
            sparse.submatrix(listeners, senders), dense[np.ix_(listeners, senders)]
        )

    def test_friis_submatrix_bitwise_equal(self):
        rng = np.random.default_rng(12)
        positions = rng.uniform(0, 15, size=(90, 2))
        chan = FriisChannel(reception_range=3.0)
        dense = chan.link_state(positions)
        sparse = chan.link_state_sparse(positions)
        listeners = list(range(0, 90, 2))
        senders = list(range(1, 90, 5))
        assert np.array_equal(
            sparse.submatrix(listeners, senders), dense[np.ix_(listeners, senders)]
        )

    def test_supports_sparse_rounds_classification(self):
        assert UnitDiskChannel(3.0).supports_sparse_rounds()
        assert UnitDiskChannel(3.0, loss_probability=0.2).supports_sparse_rounds()
        assert not UnitDiskChannel(3.0, capture_probability=0.5).supports_sparse_rounds()
        vec_off = UnitDiskChannel(3.0)
        vec_off.use_vectorized_kernels = False
        assert not vec_off.supports_sparse_rounds()
        assert not FriisChannel(3.0).supports_sparse_rounds()
