"""Integration tests for NeighborWatchRB (Theorem 3 behaviour).

These tests run the full protocol through the simulation engine on small
analytical-style grids and random deployments, under every fault model, and
check the paper's claims: authenticity always holds (a committed bit is a bit
of the source's message) as long as no square is fully Byzantine, delivery is
reached when the network is connected, and the 2-voting variant survives a
fully Byzantine square.
"""

from __future__ import annotations

import pytest

from repro.adversary.placement import faults_in_square, random_fault_selection
from repro.core.neighborwatch import NeighborWatchConfig, NeighborWatchNode
from repro.core.regions import SquareGrid
from repro.sim.builder import build_simulation, run_scenario
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.topology.deployment import grid_jittered_deployment, uniform_deployment


@pytest.fixture(scope="module")
def grid_dep():
    return grid_jittered_deployment(8, 8, spacing=1.0)


@pytest.fixture(scope="module")
def dense_dep():
    return uniform_deployment(140, 8, 8, rng=11)


def nw_config(**kwargs) -> ScenarioConfig:
    defaults = dict(protocol="neighborwatch", radius=3.0, message_length=3, seed=3)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestFaultFreeDelivery:
    def test_full_delivery_on_grid(self, grid_dep):
        result = run_scenario(grid_dep, nw_config())
        assert result.terminated
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_full_delivery_on_random_deployment(self, dense_dep):
        result = run_scenario(dense_dep, nw_config(seed=7))
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_two_vote_variant_also_delivers(self, grid_dep):
        result = run_scenario(grid_dep, nw_config(protocol="neighborwatch2"))
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_single_bit_message(self, grid_dep):
        result = run_scenario(grid_dep, nw_config(message_length=1, message=(1,)))
        assert result.completion_fraction == 1.0

    def test_specific_message_delivered_verbatim(self, grid_dep):
        message = (0, 1, 1, 0)
        result = run_scenario(grid_dep, nw_config(message_length=4, message=message))
        assert result.correctness_fraction == 1.0
        sim_msg = tuple(result.message)
        assert sim_msg == message

    def test_friis_channel_delivery(self, grid_dep):
        result = run_scenario(grid_dep, nw_config(channel="friis"))
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_longer_message_takes_longer(self, grid_dep):
        short = run_scenario(grid_dep, nw_config(message_length=2))
        long = run_scenario(grid_dep, nw_config(message_length=6))
        assert long.completion_rounds > short.completion_rounds


class TestCrashResilience:
    def test_delivery_survives_sparse_crashes(self, dense_dep):
        crashed = random_fault_selection(
            dense_dep.num_nodes, 20, exclude=[dense_dep.source_index], rng=1
        )
        result = run_scenario(dense_dep, nw_config(seed=5), FaultPlan(crashed=tuple(crashed)))
        assert result.completion_fraction > 0.9
        assert result.correctness_fraction == 1.0

    def test_heavy_crashes_reduce_completion(self, dense_dep):
        few = random_fault_selection(dense_dep.num_nodes, 10, exclude=[dense_dep.source_index], rng=1)
        many = random_fault_selection(dense_dep.num_nodes, 100, exclude=[dense_dep.source_index], rng=1)
        res_few = run_scenario(dense_dep, nw_config(seed=5), FaultPlan(crashed=tuple(few)))
        res_many = run_scenario(dense_dep, nw_config(seed=5), FaultPlan(crashed=tuple(many)))
        assert res_many.completion_fraction <= res_few.completion_fraction
        # Authenticity is never affected by crashes.
        assert res_many.correctness_fraction == 1.0


class TestJammingResilience:
    def test_jamming_delays_but_does_not_corrupt(self, grid_dep):
        jammers = random_fault_selection(
            grid_dep.num_nodes, 8, exclude=[grid_dep.source_index], rng=2
        )
        clean = run_scenario(grid_dep, nw_config())
        jammed = run_scenario(
            grid_dep,
            nw_config(),
            FaultPlan(jammers=tuple(jammers), jammer_budget=10, jam_probability=0.2),
        )
        assert jammed.correctness_fraction == 1.0
        assert jammed.completion_fraction == 1.0
        assert jammed.completion_rounds >= clean.completion_rounds

    def test_budget_exhaustion_allows_delivery(self, grid_dep):
        """Once the budget is spent the protocol always finishes (adaptivity)."""
        jammers = random_fault_selection(
            grid_dep.num_nodes, 10, exclude=[grid_dep.source_index], rng=3
        )
        result = run_scenario(
            grid_dep,
            nw_config(),
            FaultPlan(jammers=tuple(jammers), jammer_budget=6, jam_probability=1.0),
        )
        assert result.completion_fraction == 1.0
        assert result.adversary_broadcasts <= 6 * len(jammers)


class TestLyingResilience:
    def test_authenticity_holds_when_every_square_has_an_honest_node(self, grid_dep):
        """Theorem 3: scattered liars that never own a whole square cannot
        corrupt anyone (each square with a liar also has honest members that
        veto the fake relay)."""
        # On the unit grid with square side R/3 = 1, each square has exactly one
        # node except the folded boundary squares.  Pick liars only from squares
        # with at least two members so no square is fully Byzantine.
        grid = SquareGrid(8, 8, side=1.0)
        occupancy = grid.occupancy(grid_dep.positions)
        liars = []
        for square, members in occupancy.items():
            if len(members) >= 2 and grid_dep.source_index not in members:
                liars.append(members[0])
            if len(liars) >= 5:
                break
        assert liars, "fixture must provide multi-member squares"
        result = run_scenario(grid_dep, nw_config(), FaultPlan(liars=tuple(liars)))
        assert result.correctness_fraction == 1.0

    def test_fully_byzantine_square_can_corrupt_plain_variant(self, dense_dep):
        """When a whole square lies, plain NeighborWatchRB may deliver the fake
        message to some honest devices (this is exactly the t < ceil(R/2)^2
        limit of Theorem 3)."""
        grid = SquareGrid(8, 8, side=1.0)
        occupancy = grid.occupancy(dense_dep.positions)
        # Choose a populated square away from the source and corrupt all of it.
        source_square = grid.square_of(dense_dep.positions[dense_dep.source_index])
        target = None
        for square, members in sorted(occupancy.items()):
            if square != source_square and dense_dep.source_index not in members and len(members) >= 1:
                distance = abs(square[0] - source_square[0]) + abs(square[1] - source_square[1])
                if distance >= 4:
                    target = square
                    break
        assert target is not None
        liars = faults_in_square(dense_dep.positions, grid, target, exclude=[dense_dep.source_index])
        result = run_scenario(dense_dep, nw_config(seed=9), FaultPlan(liars=tuple(liars)))
        # The run must still complete for most nodes; whether anyone adopted the
        # fake message depends on the race, but the protocol must never stall.
        assert result.completion_fraction > 0.8

    def test_two_voting_resists_single_byzantine_square(self, dense_dep):
        """The 2-voting variant requires two independent squares to vouch for a
        bit, so a single fully Byzantine square cannot corrupt anyone."""
        grid = SquareGrid(8, 8, side=1.0)
        occupancy = grid.occupancy(dense_dep.positions)
        source_square = grid.square_of(dense_dep.positions[dense_dep.source_index])
        target = next(
            square
            for square, members in sorted(occupancy.items())
            if square != source_square
            and dense_dep.source_index not in members
            and abs(square[0] - source_square[0]) + abs(square[1] - source_square[1]) >= 4
        )
        liars = faults_in_square(dense_dep.positions, grid, target, exclude=[dense_dep.source_index])
        result = run_scenario(
            dense_dep, nw_config(protocol="neighborwatch2", seed=9), FaultPlan(liars=tuple(liars))
        )
        assert result.correctness_fraction == 1.0


class TestProtocolObjectBehaviour:
    def test_requires_square_schedule(self):
        from repro.core.protocol import NodeContext
        from repro.core.schedule import NodeSchedule
        import numpy as np

        node = NeighborWatchNode()
        sched = NodeSchedule(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0, 0)
        with pytest.raises(TypeError):
            node.setup(
                NodeContext(
                    node_id=1,
                    position=(1.0, 0.0),
                    radius=2.0,
                    schedule=sched,
                    message_length=2,
                )
            )

    def test_source_delivers_immediately(self, grid_dep):
        sim = build_simulation(grid_dep, nw_config())
        source = sim.nodes[grid_dep.source_index].protocol
        assert source.delivered
        assert source.delivered_message == nw_config().message_bits

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NeighborWatchConfig(votes_required=3)

    def test_interests_bounded(self, grid_dep):
        sim = build_simulation(grid_dep, nw_config())
        for node in sim.nodes:
            if node.protocol is None or node.node_id == grid_dep.source_index:
                continue
            interests = list(node.protocol.interests())
            assert 1 <= len(interests) <= 10

    def test_committed_bits_are_prefix_of_message(self, grid_dep):
        cfg = nw_config()
        sim = build_simulation(grid_dep, cfg)
        sim.run_slots(sim.schedule.num_slots * 2)
        message = cfg.message_bits
        for node in sim.nodes:
            proto = node.protocol
            if isinstance(proto, NeighborWatchNode) and node.honest:
                committed = proto.committed_bits
                assert committed == message[: len(committed)]
