"""Unit tests for run results, node bookkeeping and the RNG factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.node import SimNode
from repro.sim.results import NodeOutcome, RunResult
from repro.sim.rng import RngFactory


def outcome(node_id, *, honest=True, active=True, delivered=False, correct=None, round_=None, b=0):
    return NodeOutcome(
        node_id=node_id,
        honest=honest,
        active=active,
        delivered=delivered,
        correct=correct,
        delivery_round=round_,
        broadcasts=b,
    )


class TestRunResult:
    def make_result(self):
        outcomes = {
            0: outcome(0, delivered=True, correct=True, round_=10, b=5),     # honest ok
            1: outcome(1, delivered=True, correct=False, round_=20, b=3),    # honest wrong
            2: outcome(2, delivered=False, b=2),                             # honest pending
            3: outcome(3, honest=False, b=7),                                # adversary
            4: outcome(4, active=False),                                     # crashed
        }
        return RunResult(message=(1, 0), total_rounds=100, terminated=False, outcomes=outcomes)

    def test_population_counts(self):
        res = self.make_result()
        assert res.num_nodes == 5
        assert res.num_honest == 3
        assert res.num_adversaries == 1
        assert res.num_crashed == 1

    def test_completion_metrics(self):
        res = self.make_result()
        assert res.completion_fraction == pytest.approx(2 / 3)
        assert res.completion_rounds == 20

    def test_correctness_metrics(self):
        res = self.make_result()
        assert res.correctness_fraction == pytest.approx(1 / 2)
        assert res.correct_delivery_fraction == pytest.approx(1 / 3)
        assert res.any_incorrect_delivery

    def test_broadcast_metrics(self):
        res = self.make_result()
        assert res.total_broadcasts == 17
        assert res.honest_broadcasts == 10
        assert res.adversary_broadcasts == 7

    def test_summary_keys(self):
        summary = self.make_result().summary()
        for key in (
            "rounds",
            "completion_fraction",
            "correctness_fraction",
            "correct_delivery_fraction",
            "honest_broadcasts",
            "adversary_broadcasts",
        ):
            assert key in summary

    def test_empty_population_edge_cases(self):
        res = RunResult(message=(1,), total_rounds=5, terminated=True, outcomes={})
        assert res.completion_fraction == 0.0
        assert res.correctness_fraction == 1.0
        assert res.completion_rounds == 5

    def test_completion_rounds_defaults_to_total(self):
        res = RunResult(
            message=(1,),
            total_rounds=42,
            terminated=False,
            outcomes={0: outcome(0, delivered=False)},
        )
        assert res.completion_rounds == 42


class TestSimNode:
    def test_crashed_node(self):
        node = SimNode(0, (0.0, 0.0), protocol=None)
        assert not node.active
        assert not node.delivered
        assert node.delivered_message is None

    def test_mark_delivered_once(self):
        node = SimNode(0, (0.0, 0.0), protocol=None)
        node.mark_delivered(10)
        node.mark_delivered(20)
        assert node.delivery_round == 10

    def test_delivered_caches_protocol_state(self):
        class Flaky:
            delivered = True
            delivered_message = (1,)

        node = SimNode(0, (0.0, 0.0), protocol=Flaky())
        assert node.delivered
        node.protocol.delivered = False  # even if the protocol "changes its mind"
        assert node.delivered  # the cache keeps the first positive answer


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(7)
        a = factory.generator("channel")
        b = factory.generator("channel")
        assert a is b

    def test_different_names_different_streams(self):
        factory = RngFactory(7)
        a = factory.generator("channel").random(5)
        b = factory.generator("jammer").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        a = RngFactory(7).generator("channel").random(5)
        b = RngFactory(7).generator("channel").random(5)
        assert np.allclose(a, b)

    def test_node_generators_independent(self):
        factory = RngFactory(3)
        a = factory.node_generator(1).random(5)
        b = factory.node_generator(2).random(5)
        assert not np.allclose(a, b)

    def test_seed_property(self):
        assert RngFactory(11).seed == 11

    def test_spawn_differs_from_parent(self):
        parent = RngFactory(5)
        child = parent.spawn("rep-0")
        a = parent.generator("x").random(3)
        b = child.generator("x").random(3)
        assert not np.allclose(a, b)

    def test_spawn_reproducible(self):
        a = RngFactory(5).spawn("rep-0").generator("x").random(3)
        b = RngFactory(5).spawn("rep-0").generator("x").random(3)
        assert np.allclose(a, b)
