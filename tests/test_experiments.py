"""Smoke tests of the experiment harness (scaled-down specs).

Each experiment runs end-to-end on its ``small()`` spec (or an even smaller
inline variant) and the resulting rows are checked for the qualitative shape
the paper reports — who wins, how the curves move — rather than absolute
numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.experiments import (
    ClusteredSpec,
    CrashResilienceSpec,
    DensityToleranceSpec,
    DualModeSpec,
    EpidemicComparisonSpec,
    JammingSpec,
    LyingSpec,
    MapSizeSpec,
    airtime_bits,
    available_experiments,
    fit_linear_trend,
    linear_scaling_error,
    run_clustered,
    run_crash_resilience,
    run_density_tolerance,
    run_dual_mode,
    run_epidemic_comparison,
    run_experiment,
    run_jamming,
    run_lying,
    run_map_size,
)


class TestRegistry:
    def test_all_design_md_ids_registered(self):
        assert available_experiments() == [
            "FIG5", "JAM", "FIG6", "FIG7", "CLUST", "MAPSZ", "EPID", "DUAL"
        ]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("FIG99")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            run_experiment("MAPSZ", scale="huge")

    def test_paper_specs_construct(self):
        # The paper-scale specs are too slow to *run* in CI, but they must at
        # least be constructible and strictly larger than the small ones.
        assert len(CrashResilienceSpec.paper().densities) > len(CrashResilienceSpec.small().densities)
        assert len(LyingSpec.paper().fractions) > len(LyingSpec.small().fractions)
        assert len(JammingSpec.paper().budgets) > len(JammingSpec.small().budgets)
        assert len(MapSizeSpec.paper().map_sizes) >= len(MapSizeSpec.small().map_sizes)
        assert DensityToleranceSpec.paper().repetitions >= DensityToleranceSpec.small().repetitions
        assert EpidemicComparisonSpec.paper().include_multipath
        assert DualModeSpec.paper().payload_bits > DualModeSpec.small().payload_bits
        assert ClusteredSpec.paper().num_nodes == 1200


@pytest.mark.slow
class TestCrashResilience:
    def test_small_sweep_shape(self):
        spec = CrashResilienceSpec(
            map_size=8.0,
            deployed_density=2.5,
            densities=(0.8, 2.2),
            radius=3.0,
            message_length=2,
            protocols=[("NeighborWatchRB", "neighborwatch", 0)],
            repetitions=1,
        )
        rows = run_crash_resilience(spec)
        assert len(rows) == 2
        by_density = {row["density"]: row for row in rows}
        # Figure 5 shape: completion improves (weakly) with density.
        assert by_density[2.2]["completion_%"] >= by_density[0.8]["completion_%"] - 5.0
        assert by_density[2.2]["completion_%"] > 90.0
        # Crashes never cause incorrect deliveries.
        assert all(row["correct_%"] == pytest.approx(100.0) for row in rows)


@pytest.mark.slow
class TestJamming:
    def test_delay_grows_with_budget(self):
        spec = JammingSpec(
            map_size=8.0, num_nodes=100, radius=3.0, message_length=2, budgets=(0, 8), repetitions=1
        )
        rows = run_jamming(spec)
        assert rows[0]["budget"] == 0 and rows[1]["budget"] == 8
        assert rows[1]["rounds"] >= rows[0]["rounds"]
        assert all(row["correct_%"] == pytest.approx(100.0) for row in rows)

    def test_fit_linear_trend(self):
        rows = [{"budget": 0, "rounds": 100}, {"budget": 10, "rounds": 200}, {"budget": 20, "rounds": 310}]
        slope, intercept, r2 = fit_linear_trend(rows)
        assert slope == pytest.approx(10.5, rel=0.1)
        assert r2 > 0.95

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_linear_trend([{"budget": 0, "rounds": 1}])


@pytest.mark.slow
class TestLying:
    def test_correctness_degrades_with_liar_fraction(self):
        spec = LyingSpec(
            map_size=9.0,
            num_nodes=150,
            radius=3.0,
            message_length=2,
            fractions=(0.0, 0.30),
            protocols=[("NeighborWatchRB", "neighborwatch", 0)],
            repetitions=1,
        )
        rows = run_lying(spec)
        clean = next(r for r in rows if r["byzantine_fraction"] == 0.0)
        attacked = next(r for r in rows if r["byzantine_fraction"] == 0.30)
        assert clean["correct_%"] == pytest.approx(100.0)
        assert attacked["correct_%"] < clean["correct_%"]


@pytest.mark.slow
class TestDensityTolerance:
    def test_tolerance_grows_with_density(self):
        spec = DensityToleranceSpec(
            map_size=8.0,
            densities=(1.0, 3.0),
            candidate_fractions=(0.0, 0.05, 0.15),
            radius=3.0,
            message_length=2,
            protocols=[("NeighborWatchRB", "neighborwatch", 0)],
            repetitions=1,
        )
        rows = run_density_tolerance(spec)
        assert len(rows) == 2
        sparse = next(r for r in rows if r["density"] == 1.0)
        dense = next(r for r in rows if r["density"] == 3.0)
        # Figure 7 shape: higher density tolerates at least as many liars.
        assert dense["max_tolerated_%"] >= sparse["max_tolerated_%"]


@pytest.mark.slow
class TestClustered:
    def test_clustered_vs_uniform(self):
        spec = ClusteredSpec(
            map_size=9.0,
            num_nodes=140,
            num_clusters=4,
            radius=3.0,
            message_length=2,
            lying_fractions=(0.0,),
            repetitions=1,
        )
        rows = run_clustered(spec)
        kinds = {row["deployment"] for row in rows}
        assert kinds == {"uniform", "clustered"}
        for row in rows:
            # Completion tracks connectivity from the source, as the paper notes.
            assert row["completion_%"] <= row["reachable_from_source_pct"] + 5.0


@pytest.mark.slow
class TestMapSize:
    def test_linear_scaling(self):
        rows = run_map_size(MapSizeSpec.small())
        assert len(rows) == 2
        assert rows[1]["rounds"] > rows[0]["rounds"]
        assert rows[1]["honest_broadcasts"] > rows[0]["honest_broadcasts"]
        assert linear_scaling_error(rows) < 0.5

    def test_linear_scaling_error_helper(self):
        perfect = [{"diameter_hops": d, "rounds": 100 * d} for d in (2, 4, 6)]
        assert linear_scaling_error(perfect) == pytest.approx(0.0, abs=1e-9)


@pytest.mark.slow
class TestEpidemicComparison:
    def test_neighborwatch_slower_but_same_ballpark(self):
        rows = run_epidemic_comparison(EpidemicComparisonSpec.small())
        by_protocol = {row["protocol"]: row for row in rows}
        epidemic = by_protocol["epidemic"]
        nw = by_protocol["NeighborWatchRB"]
        assert epidemic["slowdown"] == pytest.approx(1.0)
        # The paper reports ~7.7x on large maps; on the scaled-down map the
        # air-time slowdown lands in the same order of magnitude.
        assert 2.0 < nw["slowdown"] < 40.0
        assert nw["rounds"] > epidemic["rounds"]

    def test_airtime_helper(self):
        assert airtime_bits("epidemic", 100, 5) == 500
        assert airtime_bits("neighborwatch", 100, 5) == 100


@pytest.mark.slow
class TestDualMode:
    def test_dual_mode_accepts_and_bounds_overhead(self):
        row = run_dual_mode(DualModeSpec.small())
        assert row["acceptance_%"] > 90.0
        assert row["correct_%"] == pytest.approx(100.0)
        # Securing only the digest costs far less than securing the payload
        # itself would; the overhead factor is a small constant.
        assert row["overhead_factor"] < 10.0

    def test_rows_render_as_table(self):
        row = run_dual_mode(DualModeSpec.small())
        text = format_table([row])
        assert "overhead_factor" in text
