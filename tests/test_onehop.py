"""Unit tests for the 1Hop-Protocol (repro.core.onehop)."""

from __future__ import annotations

import pytest

from repro.core.onehop import OneHopReceiver, OneHopSender, parity_of_index
from repro.core.twobit import NUM_PHASES


def run_slot(sender: OneHopSender, receivers, *, adversary_phases=()):
    """Run one broadcast interval between a 1Hop sender and its receivers."""
    adversary_phases = set(adversary_phases)
    sender_active = sender.begin_slot()
    receiver_active = [r.begin_slot() for r in receivers]
    participants = [("s", sender, sender_active)] + [
        (f"r{i}", r, active) for i, (r, active) in enumerate(zip(receivers, receiver_active))
    ]
    for phase in range(NUM_PHASES):
        transmitted = set()
        for name, device, active in participants:
            if active and device.action(phase):
                transmitted.add(name)
        adversary_on = phase in adversary_phases
        for name, device, active in participants:
            if not active or name in transmitted:
                continue
            busy = adversary_on or any(t != name for t in transmitted)
            device.observe(phase, busy)
    advanced = sender.finish_slot()
    accepted = [r.finish_slot() for r in receivers]
    return advanced, accepted


class TestParity:
    def test_first_parity_is_one(self):
        assert parity_of_index(1) == 1

    def test_alternation(self):
        assert [parity_of_index(i) for i in range(1, 7)] == [1, 0, 1, 0, 1, 0]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            parity_of_index(0)


class TestOneHopSenderQueue:
    def test_initial_state(self):
        sender = OneHopSender((1, 0, 1))
        assert sender.queued_bits == (1, 0, 1)
        assert sender.sent_count == 0
        assert sender.pending_count == 3
        assert sender.has_pending

    def test_extend(self):
        sender = OneHopSender()
        assert not sender.has_pending
        sender.extend((1, 1))
        assert sender.pending_count == 2

    def test_extend_validates(self):
        with pytest.raises(ValueError):
            OneHopSender((0, 2))

    def test_begin_slot_without_pending(self):
        sender = OneHopSender()
        assert sender.begin_slot() is False
        assert sender.current_pair is None

    def test_begin_slot_twice_raises(self):
        sender = OneHopSender((1,))
        sender.begin_slot()
        with pytest.raises(RuntimeError):
            sender.begin_slot()

    def test_current_pair_uses_parity(self):
        sender = OneHopSender((0, 1))
        sender.begin_slot()
        assert sender.current_pair == (1, 0)  # parity 1, data 0
        sender.abort_slot()

    def test_abort_slot_does_not_advance(self):
        sender = OneHopSender((1,))
        sender.begin_slot()
        sender.abort_slot()
        assert sender.sent_count == 0
        assert sender.finish_slot() is False


class TestOneHopReceiverState:
    def test_expected_parity_progression(self):
        receiver = OneHopReceiver(expected_length=4)
        assert receiver.expected_parity == 1

    def test_complete_flag(self):
        receiver = OneHopReceiver(expected_length=0)
        assert receiver.complete
        assert receiver.begin_slot() is False

    def test_open_ended_receiver_never_complete(self):
        receiver = OneHopReceiver(expected_length=None)
        assert not receiver.complete

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            OneHopReceiver(expected_length=-1)

    def test_begin_twice_raises(self):
        receiver = OneHopReceiver(expected_length=2)
        receiver.begin_slot()
        with pytest.raises(RuntimeError):
            receiver.begin_slot()

    def test_take_new_bits(self):
        receiver = OneHopReceiver(expected_length=None)
        receiver._received.extend([1, 0, 1])  # direct manipulation for the helper test
        assert receiver.take_new_bits(1) == (0, 1)


class TestStreamTransfer:
    def test_full_message_transfer(self):
        message = (1, 0, 1, 1, 0)
        sender = OneHopSender(message)
        receivers = [OneHopReceiver(expected_length=5) for _ in range(3)]
        for _ in range(len(message)):
            advanced, _ = run_slot(sender, receivers)
            assert advanced
        assert sender.sent_count == 5
        for r in receivers:
            assert r.received_bits == message
            assert r.complete

    def test_transfer_takes_one_slot_per_bit_without_interference(self):
        message = (0, 0, 1)
        sender = OneHopSender(message)
        receiver = OneHopReceiver(expected_length=3)
        slots = 0
        while not receiver.complete:
            run_slot(sender, [receiver])
            slots += 1
            assert slots <= 3
        assert slots == 3

    def test_interference_forces_retransmission(self):
        message = (1, 0)
        sender = OneHopSender(message)
        receiver = OneHopReceiver(expected_length=2)
        # First slot is jammed during the veto round: no progress.
        advanced, accepted = run_slot(sender, [receiver], adversary_phases={4})
        assert not advanced
        assert accepted == [None]
        assert receiver.failed_slots == 1
        # Retransmissions eventually deliver the same bits, in order.
        for _ in range(2):
            run_slot(sender, [receiver])
        assert receiver.received_bits == message

    def test_receiver_ignores_repetition_after_local_success(self):
        """A receiver that got the bit while the sender failed does not double-count it."""
        message = (1, 1)
        sender = OneHopSender(message)
        receiver = OneHopReceiver(expected_length=2)
        # Jam only the final round (phase 5): the receiver accepts, the sender retries.
        advanced, accepted = run_slot(sender, [receiver], adversary_phases={5})
        assert not advanced
        assert accepted == [1]
        assert receiver.received_count == 1
        # The sender repeats bit 1; the receiver must ignore the stale parity.
        advanced, accepted = run_slot(sender, [receiver])
        assert advanced
        assert accepted == [None]
        assert receiver.received_count == 1
        assert receiver.ignored_slots == 1
        # Next slot carries bit 2.
        run_slot(sender, [receiver])
        assert receiver.received_bits == message

    def test_silent_slot_is_not_mistaken_for_first_bit(self):
        """Silence cannot start a stream because the first parity is 1."""
        receiver = OneHopReceiver(expected_length=3)
        idle_sender = OneHopSender()  # nothing to send
        _, accepted = run_slot(idle_sender, [receiver])
        assert accepted == [None]
        assert receiver.received_count == 0

    def test_relay_can_extend_mid_stream(self):
        sender = OneHopSender((1,))
        receiver = OneHopReceiver(expected_length=3)
        run_slot(sender, [receiver])
        assert receiver.received_bits == (1,)
        assert not sender.has_pending
        sender.extend((0, 1))
        run_slot(sender, [receiver])
        run_slot(sender, [receiver])
        assert receiver.received_bits == (1, 0, 1)

    def test_attempt_counting(self):
        sender = OneHopSender((1,))
        receiver = OneHopReceiver(expected_length=1)
        run_slot(sender, [receiver], adversary_phases={4})
        run_slot(sender, [receiver])
        assert sender.attempts == 2
        assert sender.successful_slots == 1

    def test_open_ended_stream_accepts_many_bits(self):
        bits = (1, 0, 1, 1, 0, 0, 1, 0)
        sender = OneHopSender(bits)
        receiver = OneHopReceiver(expected_length=None)
        for _ in range(len(bits)):
            run_slot(sender, [receiver])
        assert receiver.received_bits == bits

    def test_extra_bits_beyond_expected_length_ignored(self):
        sender = OneHopSender((1, 0, 1))
        receiver = OneHopReceiver(expected_length=2)
        for _ in range(3):
            run_slot(sender, [receiver])
        assert receiver.received_bits == (1, 0)
