"""Property-based tests of Theorem 1 (the 2Bit-Protocol) using hypothesis.

The adversary in these tests controls, independently for the sender side and
for every receiver, which rounds appear busy *in addition to* the honest
transmissions (Byzantine devices can add energy anywhere but can never erase
it).  Theorem 1's properties must hold for every such interference pattern:

* Authenticity  — a successful receiver reports exactly the pair sent;
* Termination   — if the sender succeeds, every honest receiver succeeded;
* Energy        — if anyone fails, the adversary broadcast at least once.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.twobit import NUM_PHASES, TwoBitOutcome, TwoBitReceiver, TwoBitSender

# The adversary chooses, per device, the set of phases it pollutes with energy.
interference = st.lists(
    st.sets(st.integers(min_value=0, max_value=NUM_PHASES - 1)), min_size=1, max_size=4
)
sender_interference = st.sets(st.integers(min_value=0, max_value=NUM_PHASES - 1))
bits = st.tuples(st.integers(0, 1), st.integers(0, 1))


def run_with_local_interference(b1, b2, receiver_noise, sender_noise):
    """One 2Bit exchange where the adversary injects energy per-device.

    ``receiver_noise[i]`` is the set of phases during which receiver ``i``
    perceives extra energy (e.g. from a nearby Byzantine device the others do
    not hear); ``sender_noise`` plays the same role for the sender.  Honest
    broadcasts are heard by everyone (single collision domain).
    """
    sender = TwoBitSender(b1, b2)
    receivers = [TwoBitReceiver() for _ in receiver_noise]
    participants = [("s", sender, sender_noise)] + [
        (f"r{i}", r, noise) for i, (r, noise) in enumerate(zip(receivers, receiver_noise))
    ]
    for phase in range(NUM_PHASES):
        transmitted = set()
        for name, device, _noise in participants:
            if device.action(phase):
                transmitted.add(name)
        for name, device, noise in participants:
            if name in transmitted:
                continue
            busy = (phase in noise) or any(t != name for t in transmitted)
            device.observe(phase, busy)
    return sender, receivers


class TestTheoremOneProperties:
    @settings(max_examples=300, deadline=None)
    @given(bits, interference, sender_interference)
    def test_authenticity(self, pair, receiver_noise, sender_noise):
        b1, b2 = pair
        _sender, receivers = run_with_local_interference(b1, b2, receiver_noise, sender_noise)
        for r in receivers:
            if r.outcome() is TwoBitOutcome.SUCCESS:
                assert r.result() == (b1, b2)

    @settings(max_examples=300, deadline=None)
    @given(bits, interference)
    def test_termination_with_shared_interference(self, pair, receiver_noise):
        """When all devices share the collision domain with the adversary
        (identical noise), sender success implies every receiver succeeded."""
        b1, b2 = pair
        shared = receiver_noise[0]
        noise = [shared for _ in receiver_noise]
        sender, receivers = run_with_local_interference(b1, b2, noise, shared)
        if sender.outcome() is TwoBitOutcome.SUCCESS:
            assert all(r.outcome() is TwoBitOutcome.SUCCESS for r in receivers)
            assert all(r.result() == (b1, b2) for r in receivers)

    @settings(max_examples=300, deadline=None)
    @given(bits, st.integers(min_value=1, max_value=4))
    def test_energy_no_interference_no_failure(self, pair, num_receivers):
        """Failures require the adversary to have spent at least one broadcast."""
        b1, b2 = pair
        noise = [set() for _ in range(num_receivers)]
        sender, receivers = run_with_local_interference(b1, b2, noise, set())
        assert sender.outcome() is TwoBitOutcome.SUCCESS
        assert all(r.outcome() is TwoBitOutcome.SUCCESS for r in receivers)

    @settings(max_examples=200, deadline=None)
    @given(bits, interference, sender_interference)
    def test_no_receiver_reports_success_with_wrong_bits(self, pair, receiver_noise, sender_noise):
        """Stronger phrasing of authenticity: the estimate of a successful
        receiver never differs from the transmitted pair, bit by bit."""
        b1, b2 = pair
        _sender, receivers = run_with_local_interference(b1, b2, receiver_noise, sender_noise)
        for r in receivers:
            if r.outcome() is TwoBitOutcome.SUCCESS:
                est1, est2 = r.estimate
                assert est1 == b1
                assert est2 == b2
