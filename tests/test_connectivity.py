"""Unit tests for connectivity analysis (repro.topology.connectivity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.connectivity import (
    communication_graph,
    connectivity_report,
    hop_counts_from,
    is_connected_to,
    reachable_fraction,
)


@pytest.fixture
def line_positions() -> np.ndarray:
    """Five nodes on a line, 1 unit apart, plus one isolated node."""
    return np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0], [4.0, 0.0], [20.0, 0.0]])


class TestCommunicationGraph:
    def test_edges(self, line_positions):
        graph = communication_graph(line_positions, radius=1.0)
        assert graph.number_of_nodes() == 6
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert graph.degree[5] == 0

    def test_larger_radius_more_edges(self, line_positions):
        g1 = communication_graph(line_positions, radius=1.0)
        g2 = communication_graph(line_positions, radius=2.0)
        assert g2.number_of_edges() > g1.number_of_edges()


class TestHopCounts:
    def test_line_hops(self, line_positions):
        hops = hop_counts_from(line_positions, radius=1.0, source=0)
        assert hops.tolist() == [0, 1, 2, 3, 4, -1]

    def test_unreachable_marked(self, line_positions):
        hops = hop_counts_from(line_positions, radius=1.0, source=5)
        assert hops[5] == 0
        assert (hops[:5] == -1).all()

    def test_source_out_of_range(self, line_positions):
        with pytest.raises(ValueError):
            hop_counts_from(line_positions, radius=1.0, source=99)

    def test_hops_match_networkx(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 10, size=(60, 2))
        import networkx as nx

        graph = communication_graph(pos, radius=2.5)
        expected = nx.single_source_shortest_path_length(graph, 0)
        hops = hop_counts_from(pos, radius=2.5, source=0)
        for node in range(60):
            if node in expected:
                assert hops[node] == expected[node]
            else:
                assert hops[node] == -1


class TestReachability:
    def test_is_connected_to(self, line_positions):
        mask = is_connected_to(line_positions, radius=1.0, source=0)
        assert mask.tolist() == [True, True, True, True, True, False]

    def test_reachable_fraction(self, line_positions):
        assert reachable_fraction(line_positions, radius=1.0, source=0) == pytest.approx(5 / 6)


class TestConnectivityReport:
    def test_report_fields(self, line_positions):
        report = connectivity_report(line_positions, radius=1.0, source=0)
        assert report.num_nodes == 6
        assert report.num_components == 2
        assert report.largest_component_fraction == pytest.approx(5 / 6)
        assert report.reachable_from_source == pytest.approx(5 / 6)
        assert report.diameter_hops_from_source == 4
        assert report.min_degree == 0

    def test_dominant_threshold(self, line_positions):
        report = connectivity_report(line_positions, radius=1.0, source=0)
        assert not report.is_source_component_dominant(threshold=0.95)
        assert report.is_source_component_dominant(threshold=0.8)

    def test_fully_connected_grid(self):
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        pos = np.column_stack([xs.ravel(), ys.ravel()])
        report = connectivity_report(pos, radius=1.5, source=0)
        assert report.num_components == 1
        assert report.reachable_from_source == 1.0
