"""Fast-path-vs-oracle equivalence, and byte-identity end to end.

PR 3 vectorized the per-round channel resolvers (`UnitDiskChannel` /
`FriisChannel`) and added whole-round memoization to the engine; PR 4 added
the cohort protocol runtime (`repro.sim.batch`), which executes
observation-identical devices' state machines once per cohort.  The contract
is strict bit-identity for both layers: each fast path must produce
*identical observations/records* to its per-device/scalar oracle **and leave
the RNG at exactly the same stream position** (otherwise every later draw of
a run diverges).  These tests pin that contract:

* property tests drive randomized listener/transmitter sets through both
  channel implementations side by side (same seed) and compare observation
  lists and the next RNG draw;
* end-to-end tests run whole scenarios with the vectorized kernels forced
  off — and, separately, with the cohort runtime toggled — and compare the
  full result records and the channel-RNG position;
* a warm-store regression runs one experiment cold then warm through a
  ``ResultStore`` (the ``REPRO_BENCH_CACHE_DIR`` path of the benchmark
  harness) and asserts the fast path reproduces the cached bytes with zero
  misses.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import Frame, FrameKind
from repro.sim.radio import FriisChannel, Transmission, UnitDiskChannel, message_observation

# Node layouts are drawn as integer grid offsets scaled down, which produces
# plenty of exact-boundary and coincident-position cases (the interesting
# inputs for mask/argmax equivalence) without floating-point surprises.
positions_strategy = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=2,
    max_size=12,
)


def _split_roles(positions, data):
    """Choose a non-empty transmitter subset; the rest listen."""
    num = len(positions)
    num_tx = data.draw(st.integers(1, max(1, num // 2)), label="num_tx")
    tx_ids = sorted(data.draw(st.permutations(range(num)), label="tx_ids")[:num_tx])
    listener_ids = [i for i in range(num) if i not in tx_ids]
    if not listener_ids:
        listener_ids = [tx_ids.pop()]
    transmissions = [
        Transmission(i, (float(positions[i][0]) / 2.0, float(positions[i][1]) / 2.0),
                     Frame(FrameKind.DATA_BIT, i, (i % 2,)))
        for i in tx_ids
    ]
    return listener_ids, transmissions


def _observe_both(channel_factory, positions, listener_ids, transmissions, seed):
    """Run the vectorized and the scalar kernel on the same round and RNG seed."""
    pos = np.asarray(positions, dtype=float) / 2.0
    fast = channel_factory()
    slow = channel_factory()
    slow.use_vectorized_kernels = False
    assert fast.use_vectorized_kernels  # class default
    rng_fast = np.random.default_rng(seed)
    rng_slow = np.random.default_rng(seed)
    obs_fast = fast.observe(listener_ids, pos[listener_ids], transmissions, rng_fast)
    obs_slow = slow.observe(listener_ids, pos[listener_ids], transmissions, rng_slow)
    return obs_fast, obs_slow, rng_fast, rng_slow


class TestUnitDiskKernelEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data(), positions=positions_strategy, seed=st.integers(0, 2**32 - 1),
           loss=st.sampled_from([0.0, 0.25, 0.9]))
    def test_loss_configurations_match_scalar(self, data, positions, seed, loss):
        """Deterministic and loss-only configs take the vectorized path."""
        listener_ids, transmissions = _split_roles(positions, data)
        obs_fast, obs_slow, rng_fast, rng_slow = _observe_both(
            lambda: UnitDiskChannel(2.0, loss_probability=loss),
            positions, listener_ids, transmissions, seed,
        )
        assert obs_fast == obs_slow
        # Identical stream position: the next draw must agree.
        assert rng_fast.random() == rng_slow.random()

    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), positions=positions_strategy, seed=st.integers(0, 2**32 - 1),
           capture=st.sampled_from([0.3, 1.0]), loss=st.sampled_from([0.0, 0.25]))
    def test_capture_configurations_match_scalar(self, data, positions, seed, capture, loss):
        """Capture configs fall back to the scalar loop — still equivalent."""
        listener_ids, transmissions = _split_roles(positions, data)
        obs_fast, obs_slow, rng_fast, rng_slow = _observe_both(
            lambda: UnitDiskChannel(2.0, capture_probability=capture, loss_probability=loss),
            positions, listener_ids, transmissions, seed,
        )
        assert obs_fast == obs_slow
        assert rng_fast.random() == rng_slow.random()

    def test_consumes_rng_classification(self):
        assert not UnitDiskChannel(1.0).consumes_rng()
        assert UnitDiskChannel(1.0, loss_probability=0.1).consumes_rng()
        assert UnitDiskChannel(1.0, capture_probability=0.1).consumes_rng()


class TestFriisKernelEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data(), positions=positions_strategy, seed=st.integers(0, 2**32 - 1),
           loss=st.sampled_from([0.0, 0.25, 0.9]))
    def test_matches_scalar(self, data, positions, seed, loss):
        listener_ids, transmissions = _split_roles(positions, data)
        obs_fast, obs_slow, rng_fast, rng_slow = _observe_both(
            lambda: FriisChannel(2.0, loss_probability=loss),
            positions, listener_ids, transmissions, seed,
        )
        assert obs_fast == obs_slow
        assert rng_fast.random() == rng_slow.random()

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), positions=positions_strategy, seed=st.integers(0, 2**32 - 1))
    def test_observe_links_matches_observe(self, data, positions, seed):
        """The precomputed-link-state path stays equivalent too."""
        listener_ids, transmissions = _split_roles(positions, data)
        pos = np.asarray(positions, dtype=float) / 2.0
        chan = FriisChannel(2.0, loss_probability=0.25)
        state = chan.link_state(pos)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        direct = chan.observe(listener_ids, pos[listener_ids], transmissions, rng_a)
        via_links = chan.observe_links(listener_ids, state, transmissions, rng_b)
        assert direct == via_links
        assert rng_a.random() == rng_b.random()

    def test_consumes_rng_classification(self):
        assert not FriisChannel(1.0).consumes_rng()
        assert FriisChannel(1.0, loss_probability=0.1).consumes_rng()


class TestMessageObservationInterning:
    def test_same_frame_same_object(self):
        frame = Frame(FrameKind.DATA_BIT, 3, (1,))
        assert message_observation(frame) is message_observation(Frame(FrameKind.DATA_BIT, 3, (1,)))

    def test_distinct_frames_distinct_observations(self):
        a = message_observation(Frame(FrameKind.DATA_BIT, 3, (1,)))
        b = message_observation(Frame(FrameKind.VETO, 3))
        assert a != b and a.decoded != b.decoded


def _run_with_kernels(deployment, config, faults=None, *, vectorized: bool):
    from repro.sim.builder import build_simulation
    from repro.sim.engine import clear_link_cache

    clear_link_cache()  # the link cache is keyed by channel params, but keep runs isolated
    sim = build_simulation(deployment, config, faults)
    sim.channel.use_vectorized_kernels = vectorized
    return sim.run(4000)


class TestEndToEndEquivalence:
    """Whole runs with the vectorized kernels forced off must not move a bit."""

    @pytest.mark.parametrize("channel,loss", [("unitdisk", 0.0), ("unitdisk", 0.2),
                                              ("friis", 0.0), ("friis", 0.2)])
    def test_full_run_identical(self, tiny_grid_deployment, channel, loss):
        from dataclasses import replace

        from repro.sim.config import ScenarioConfig

        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=11,
            channel=channel, loss_probability=loss,
        )
        fast = _run_with_kernels(tiny_grid_deployment, config, vectorized=True)
        slow = _run_with_kernels(tiny_grid_deployment, replace(config), vectorized=False)
        assert fast.to_record() == slow.to_record()


class TestCohortRuntimeEquivalence:
    """Cohort-vs-scalar protocol execution must not move a bit either.

    Same discipline PR 3 applied to the channel kernels: full-record identity
    across channels, loss/capture settings and fault plans, plus an explicit
    channel-RNG stream-position check (stochastic configurations draw per
    listener, so any divergence in execution order would surface here).
    """

    @pytest.mark.parametrize(
        "protocol,channel,loss,capture",
        [
            ("neighborwatch", "unitdisk", 0.0, 0.0),
            ("neighborwatch", "unitdisk", 0.2, 0.5),
            ("neighborwatch", "friis", 0.0, 0.0),
            ("neighborwatch", "friis", 0.25, 0.0),
            ("neighborwatch2", "unitdisk", 0.1, 0.0),
            ("multipath", "unitdisk", 0.0, 0.0),
            ("epidemic", "unitdisk", 0.1, 0.0),
        ],
    )
    def test_full_run_identical_and_rng_position_matches(
        self, tiny_grid_deployment, protocol, channel, loss, capture
    ):
        from repro.sim.builder import build_simulation
        from repro.sim.config import ScenarioConfig
        from repro.sim.engine import clear_link_cache

        kwargs = dict(
            protocol=protocol, radius=3.0, seed=17, channel=channel,
            loss_probability=loss, capture_probability=capture,
        )
        kwargs["message_length"] = 2 if protocol == "multipath" else 3
        if protocol == "multipath":
            kwargs["multipath_tolerance"] = 1
        config = ScenarioConfig(**kwargs)

        results = {}
        for cohort in (False, True):
            clear_link_cache()
            sim = build_simulation(tiny_grid_deployment, config, use_cohort_runtime=cohort)
            record = sim.run(4000).to_record()
            results[cohort] = (record, sim.rng.random())
        assert results[True][0] == results[False][0]
        assert results[True][1] == results[False][1]

    @pytest.mark.parametrize("scenario", ["jammers", "liars", "crashed"])
    def test_fault_plans_identical(self, tiny_grid_deployment, scenario):
        from repro.adversary.placement import random_fault_selection
        from repro.sim.builder import run_scenario
        from repro.sim.config import FaultPlan, ScenarioConfig
        from repro.sim.engine import clear_link_cache

        config = ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=3, seed=29)
        picks = random_fault_selection(
            tiny_grid_deployment.num_nodes, 4,
            exclude=[tiny_grid_deployment.source_index], rng=31,
        )
        if scenario == "jammers":
            faults = FaultPlan(jammers=tuple(picks), jammer_budget=25, jam_probability=0.3)
        elif scenario == "liars":
            faults = FaultPlan(liars=tuple(picks))
        else:
            faults = FaultPlan(crashed=tuple(picks))

        clear_link_cache()
        scalar = run_scenario(tiny_grid_deployment, config, faults, use_cohort_runtime=False)
        clear_link_cache()
        cohort = run_scenario(tiny_grid_deployment, config, faults, use_cohort_runtime=True)
        assert cohort.to_record() == scalar.to_record()


class TestWarmStoreByteIdentity:
    """The benchmark harness's REPRO_BENCH_CACHE_DIR path: a warm rerun of an
    experiment through the content-addressed store must reproduce the cold
    run's exported rows byte for byte while dispatching zero simulations."""

    def test_epidemic_comparison_warm_rerun_is_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path))  # documents the knob
        from repro.experiments.registry import run_experiment
        from repro.store import ResultStore

        def export(rows):
            return json.dumps(list(rows), sort_keys=True).encode("utf8")

        cold_store = ResultStore(tmp_path)
        cold_rows, _ = run_experiment("EPID", scale="small", store=cold_store)
        assert cold_store.stats.hits == 0 and cold_store.stats.misses > 0

        warm_store = ResultStore(tmp_path)
        warm_rows, _ = run_experiment("EPID", scale="small", store=warm_store)
        assert warm_store.stats.misses == 0
        assert warm_store.stats.hits == cold_store.stats.misses
        assert export(warm_rows) == export(cold_rows)


class TestSpatialTilingEquivalence:
    """Tiled-vs-dense link state must not move a bit either.

    Same discipline as the kernel and cohort layers: full-record identity
    across protocols, channels and loss/capture settings, plus the explicit
    channel-RNG stream-position check.  The 600- and 1200-node cases are the
    PR's stated scale pins — uniform deployments at the benchmark macros'
    density, run tiled and untiled back to back.
    """

    @pytest.mark.parametrize(
        "protocol,channel,loss,capture",
        [
            ("neighborwatch", "unitdisk", 0.0, 0.0),
            ("neighborwatch", "unitdisk", 0.2, 0.0),
            ("neighborwatch", "unitdisk", 0.2, 0.5),
            ("neighborwatch", "friis", 0.0, 0.0),
            ("neighborwatch", "friis", 0.25, 0.0),
            ("neighborwatch2", "unitdisk", 0.1, 0.0),
            ("multipath", "unitdisk", 0.0, 0.0),
            ("epidemic", "unitdisk", 0.1, 0.0),
        ],
    )
    def test_full_run_identical_and_rng_position_matches(
        self, uniform_small_deployment, protocol, channel, loss, capture
    ):
        from repro.sim.builder import build_simulation
        from repro.sim.config import ScenarioConfig
        from repro.sim.engine import clear_link_cache

        kwargs = dict(
            protocol=protocol, radius=3.0, seed=17, channel=channel,
            loss_probability=loss, capture_probability=capture,
        )
        kwargs["message_length"] = 2 if protocol == "multipath" else 3
        if protocol == "multipath":
            kwargs["multipath_tolerance"] = 1
        config = ScenarioConfig(**kwargs)

        results = {}
        for tiled in (False, True):
            clear_link_cache()
            sim = build_simulation(uniform_small_deployment, config, use_spatial_tiling=tiled)
            record = sim.run(4000).to_record()
            results[tiled] = (record, sim.rng.random())
        assert results[True][0] == results[False][0]
        assert results[True][1] == results[False][1]

    @pytest.mark.parametrize(
        "protocol,num_nodes",
        [("neighborwatch", 600), ("epidemic", 1200)],
    )
    def test_scale_pins_600_and_1200_nodes(self, protocol, num_nodes):
        """The acceptance-scale runs: tiled byte-identity at 600/1200 nodes.

        Serialized-record equality covers the exported rows and the bytes a
        ResultStore would persist; the RNG draw pins the stream position.
        """
        from repro.experiments.factories import UniformDeploymentFactory
        from repro.sim.builder import build_simulation
        from repro.sim.config import ScenarioConfig
        from repro.sim.engine import clear_link_cache

        deployment = UniformDeploymentFactory(num_nodes, 20.0, 20.0)(5)
        config = ScenarioConfig(
            protocol=protocol, radius=4.0, message_length=4, seed=5
        )
        serialized = {}
        for tiled in (False, True):
            clear_link_cache()
            # Pinned to the cohort/scalar tiers: the tiled round counters
            # asserted below only accumulate when rounds resolve through the
            # link state, which the SoA slot kernels bypass.
            sim = build_simulation(
                deployment, config, use_spatial_tiling=tiled, use_soa_kernels=False
            )
            result = sim.run(20000)
            serialized[tiled] = (
                json.dumps(result.to_record(), sort_keys=True, default=str),
                sim.rng.random(),
            )
            info = sim.plan_cache_info()["spatial_tiling"]
            assert info["enabled"] is tiled
            if tiled:
                assert info["sparse_nnz"] < num_nodes * num_nodes
                assert info["rounds_resolved"] > 0
        assert serialized[True] == serialized[False]
