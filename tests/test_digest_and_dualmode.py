"""Tests for the digest helpers and the dual-mode combination logic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.digest import digest_matches, polynomial_digest, recommended_digest_length
from repro.core.dualmode import combine_dual_mode
from repro.sim.results import NodeOutcome, RunResult

bits_strategy = st.lists(st.integers(0, 1), min_size=1, max_size=64)


class TestPolynomialDigest:
    def test_deterministic(self):
        msg = (1, 0, 1, 1)
        assert polynomial_digest(msg, 8) == polynomial_digest(msg, 8)

    def test_length(self):
        assert len(polynomial_digest((1, 0, 1), 5)) == 5
        assert len(polynomial_digest((1, 0, 1), 70)) == 70

    def test_different_messages_usually_differ(self):
        collisions = 0
        base = polynomial_digest((1, 0, 1, 0, 1, 0, 1, 0), 16)
        for i in range(50):
            other = tuple(int(b) for b in format(i + 1, "08b"))
            if polynomial_digest(other, 16) == base and other != (1, 0, 1, 0, 1, 0, 1, 0):
                collisions += 1
        assert collisions <= 1

    def test_prefix_does_not_collide_with_extension(self):
        assert polynomial_digest((1, 0), 16) != polynomial_digest((1, 0, 0), 16)

    def test_matches(self):
        msg = (0, 1, 1, 0, 1)
        digest = polynomial_digest(msg, 6)
        assert digest_matches(msg, digest)
        assert not digest_matches((1, 1, 1, 0, 1), digest)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            polynomial_digest((1, 0), 0)
        with pytest.raises(ValueError):
            polynomial_digest((1, 2), 4)

    @settings(max_examples=100, deadline=None)
    @given(bits_strategy, st.integers(min_value=1, max_value=32))
    def test_roundtrip_property(self, message, width):
        digest = polynomial_digest(message, width)
        assert len(digest) == width
        assert all(b in (0, 1) for b in digest)
        assert digest_matches(message, digest)


class TestRecommendedDigestLength:
    def test_tenth_of_message(self):
        assert recommended_digest_length(50) == 5
        assert recommended_digest_length(100, ratio=0.07) == 7

    def test_at_least_one(self):
        assert recommended_digest_length(3) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            recommended_digest_length(0)
        with pytest.raises(ValueError):
            recommended_digest_length(10, ratio=0.0)


def make_result(message, outcomes):
    return RunResult(message=tuple(message), total_rounds=100, terminated=True, outcomes=outcomes)


def honest_outcome(node_id, delivered, correct, round_=50):
    return NodeOutcome(
        node_id=node_id,
        honest=True,
        active=True,
        delivered=delivered,
        correct=correct,
        delivery_round=round_ if delivered else None,
        broadcasts=1,
    )


class TestCombineDualMode:
    def setup_method(self):
        self.message = (1, 0, 1, 1, 0, 0, 1, 0, 1, 1)
        self.digest = polynomial_digest(self.message, 2)

    def test_accepts_when_both_delivered_correctly(self):
        payload = make_result(self.message, {0: honest_outcome(0, True, True)})
        digest = make_result(self.digest, {0: honest_outcome(0, True, True)})
        combined = combine_dual_mode(self.message, payload, digest)
        assert combined.outcomes[0].accepted
        assert combined.outcomes[0].correct
        assert combined.acceptance_fraction == 1.0
        assert combined.correctness_fraction == 1.0

    def test_rejects_without_digest(self):
        payload = make_result(self.message, {0: honest_outcome(0, True, True)})
        digest = make_result(self.digest, {0: honest_outcome(0, False, None)})
        combined = combine_dual_mode(self.message, payload, digest)
        assert not combined.outcomes[0].accepted

    def test_rejects_fake_payload(self):
        payload = make_result(self.message, {0: honest_outcome(0, True, False)})
        digest = make_result(self.digest, {0: honest_outcome(0, True, True)})
        combined = combine_dual_mode(self.message, payload, digest)
        assert not combined.outcomes[0].accepted
        assert not combined.any_incorrect_acceptance

    def test_total_rounds_is_sum_of_phases(self):
        payload = make_result(self.message, {0: honest_outcome(0, True, True, round_=40)})
        digest = make_result(self.digest, {0: honest_outcome(0, True, True, round_=60)})
        combined = combine_dual_mode(self.message, payload, digest)
        assert combined.total_rounds == 100
        assert combined.payload_rounds == 40
        assert combined.digest_rounds == 60

    def test_mismatched_digest_run_rejected(self):
        payload = make_result(self.message, {0: honest_outcome(0, True, True)})
        wrong_digest = make_result((1, 1, 1), {0: honest_outcome(0, True, True)})
        with pytest.raises(ValueError):
            combine_dual_mode(self.message, payload, wrong_digest)

    def test_adversary_and_crashed_devices_excluded(self):
        payload = make_result(
            self.message,
            {
                0: honest_outcome(0, True, True),
                1: NodeOutcome(1, honest=False, active=True, delivered=False, correct=None,
                               delivery_round=None, broadcasts=3),
                2: NodeOutcome(2, honest=True, active=False, delivered=False, correct=None,
                               delivery_round=None, broadcasts=0),
            },
        )
        digest = make_result(self.digest, {0: honest_outcome(0, True, True)})
        combined = combine_dual_mode(self.message, payload, digest)
        assert set(combined.outcomes) == {0}

    def test_summary_keys(self):
        payload = make_result(self.message, {0: honest_outcome(0, True, True)})
        digest = make_result(self.digest, {0: honest_outcome(0, True, True)})
        summary = combine_dual_mode(self.message, payload, digest).summary()
        for key in ("total_rounds", "acceptance_fraction", "correctness_fraction"):
            assert key in summary
