"""Unit tests for deployment generators (repro.topology.deployment)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.deployment import (
    Deployment,
    clustered_deployment,
    density,
    grid_jittered_deployment,
    marsaglia_normal_pairs,
    uniform_deployment,
)


class TestDeploymentDataclass:
    def test_density(self):
        dep = Deployment(positions=np.zeros((50, 2)) + 1.0, width=10, height=5)
        assert dep.density == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Deployment(positions=np.empty((0, 2)), width=5, height=5)

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            Deployment(positions=np.zeros((3, 2)), width=5, height=5, source_index=3)

    def test_with_source_at_center(self):
        pos = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 9.0]])
        dep = Deployment(positions=pos, width=10, height=10, source_index=0)
        assert dep.with_source_at_center().source_index == 1

    def test_subset_preserves_source(self):
        pos = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        dep = Deployment(positions=pos, width=4, height=4, source_index=1)
        sub = dep.subset([0, 1, 3])
        assert sub.num_nodes == 3
        assert sub.positions[sub.source_index].tolist() == [1.0, 1.0]

    def test_subset_requires_source(self):
        pos = np.zeros((4, 2))
        dep = Deployment(positions=pos, width=4, height=4, source_index=1)
        with pytest.raises(ValueError):
            dep.subset([0, 2, 3])


class TestDensityHelper:
    def test_density_value(self):
        assert density(800, 24, 24) == pytest.approx(800 / 576)

    def test_density_invalid_map(self):
        with pytest.raises(ValueError):
            density(10, 0, 5)


class TestUniformDeployment:
    def test_positions_within_map(self):
        dep = uniform_deployment(200, 20, 30, rng=0)
        assert dep.num_nodes == 200
        assert (dep.positions[:, 0] >= 0).all() and (dep.positions[:, 0] <= 20).all()
        assert (dep.positions[:, 1] >= 0).all() and (dep.positions[:, 1] <= 30).all()

    def test_reproducible_with_seed(self):
        a = uniform_deployment(50, 10, 10, rng=42)
        b = uniform_deployment(50, 10, 10, rng=42)
        assert np.allclose(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = uniform_deployment(50, 10, 10, rng=1)
        b = uniform_deployment(50, 10, 10, rng=2)
        assert not np.allclose(a.positions, b.positions)

    def test_source_near_center(self):
        dep = uniform_deployment(300, 20, 20, rng=3)
        center = np.array([10.0, 10.0])
        d = np.abs(dep.positions - center).max(axis=1)
        assert d[dep.source_index] == d.min()

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_deployment(0, 10, 10)


class TestMarsagliaPairs:
    def test_shape(self):
        gen = np.random.default_rng(0)
        assert marsaglia_normal_pairs(100, gen).shape == (100, 2)

    def test_zero(self):
        gen = np.random.default_rng(0)
        assert marsaglia_normal_pairs(0, gen).shape == (0, 2)

    def test_negative(self):
        with pytest.raises(ValueError):
            marsaglia_normal_pairs(-1, np.random.default_rng(0))

    def test_moments_are_standard_normal(self):
        gen = np.random.default_rng(123)
        samples = marsaglia_normal_pairs(20000, gen)
        assert abs(samples.mean()) < 0.05
        assert abs(samples.std() - 1.0) < 0.05

    def test_coordinates_uncorrelated(self):
        gen = np.random.default_rng(7)
        samples = marsaglia_normal_pairs(20000, gen)
        corr = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
        assert abs(corr) < 0.05


class TestClusteredDeployment:
    def test_positions_within_map(self):
        dep = clustered_deployment(400, 30, 30, num_clusters=6, rng=0)
        assert dep.num_nodes == 400
        assert (dep.positions >= 0).all()
        assert (dep.positions[:, 0] <= 30).all() and (dep.positions[:, 1] <= 30).all()

    def test_is_actually_clustered(self):
        """Clustered deployments have higher local density variance than uniform ones."""
        uni = uniform_deployment(600, 30, 30, rng=5)
        clu = clustered_deployment(600, 30, 30, num_clusters=5, cluster_std=2.0, rng=5)

        def cell_counts(dep):
            cells = np.floor(dep.positions / 5.0).astype(int)
            keys = cells[:, 0] * 100 + cells[:, 1]
            _, counts = np.unique(keys, return_counts=True)
            full = np.zeros(36)
            full[: len(counts)] = counts
            return full

        assert cell_counts(clu).std() > cell_counts(uni).std()

    def test_metadata(self):
        dep = clustered_deployment(100, 20, 20, num_clusters=3, rng=1)
        assert dep.metadata["kind"] == "clustered"
        assert dep.metadata["num_clusters"] == 3

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            clustered_deployment(100, 20, 20, num_clusters=0)


class TestGridJitteredDeployment:
    def test_exact_grid_when_no_jitter(self):
        dep = grid_jittered_deployment(4, 4, spacing=1.0)
        assert dep.num_nodes == 25
        assert set(map(tuple, dep.positions.tolist())) == {
            (float(x), float(y)) for x in range(5) for y in range(5)
        }

    def test_jitter_stays_on_map(self):
        dep = grid_jittered_deployment(5, 5, spacing=1.0, jitter=0.4, rng=3)
        assert (dep.positions >= 0).all()
        assert (dep.positions <= 5).all()

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            grid_jittered_deployment(5, 5, spacing=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    def test_grid_count_property(self, w, h):
        dep = grid_jittered_deployment(w, h, spacing=1.0)
        assert dep.num_nodes == (w + 1) * (h + 1)
