"""Round-trip, fingerprint-stability and CLI tests of the declarative spec API.

The hard contract of the PR 5 redesign: the spec-driven drivers must build
*the same* sweep tasks — byte-identical ``SweepTask.fingerprint()`` values,
same labels and repetition counts, in the same order — as the hand-written
experiment modules they replaced.  ``tests/data/experiment_task_fingerprints.json``
is a golden capture taken from the PR 4 tree (see
``tests/fingerprint_capture.py``) and must never be regenerated from
post-redesign code; ``tests/data/prebuilt_cache`` is a ResultStore populated
by the PR 4 tree, replayed here with zero dispatches.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from fingerprint_capture import GOLDEN_PATH, capture_fingerprints
from repro.experiments import (
    EXPERIMENTS,
    ExperimentSpec,
    SpecValidationError,
    available_experiments,
    describe_spec,
    get_spec,
    load_spec,
    run_spec,
)
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.spec import evaluate_expression, render_template

DATA_DIR = Path(__file__).parent / "data"
EXAMPLE_SPEC = Path(__file__).parent.parent / "examples" / "specs" / "clustered_jamming.toml"

ALL_IDS = ["FIG5", "JAM", "FIG6", "FIG7", "CLUST", "MAPSZ", "EPID", "DUAL"]


class TestSerializationRoundTrip:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_json_round_trip(self, experiment_id):
        spec = get_spec(experiment_id)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_toml_round_trip(self, experiment_id):
        spec = get_spec(experiment_id)
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_example_spec_file_loads_and_round_trips(self):
        spec = load_spec(EXAMPLE_SPEC)
        assert spec.name == "CLUSTJAM"
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_round_trip_preserves_numeric_types(self):
        # 4.0 and 4 fingerprint differently, so serialization must not
        # collapse float/int distinctions.
        spec = get_spec("FIG5")
        reparsed = ExperimentSpec.from_json(spec.to_json())
        assert isinstance(reparsed.params["map_size"], float)
        assert isinstance(reparsed.params["message_length"], int)
        reparsed_toml = ExperimentSpec.from_toml(spec.to_toml())
        assert isinstance(reparsed_toml.params["map_size"], float)
        assert isinstance(reparsed_toml.params["message_length"], int)


class TestSpecValidation:
    def test_unknown_fields_listed(self):
        with pytest.raises(SpecValidationError) as excinfo:
            ExperimentSpec.from_dict({"name": "X", "title": "x", "bogus": 1, "wrong": 2})
        assert "bogus" in str(excinfo.value) and "wrong" in str(excinfo.value)

    def test_missing_required_fields_listed(self):
        with pytest.raises(SpecValidationError) as excinfo:
            ExperimentSpec.from_dict({"driver": "sweep"})
        assert "name" in str(excinfo.value) and "title" in str(excinfo.value)

    def test_malformed_axes_rejected(self):
        with pytest.raises(SpecValidationError, match="axis #0"):
            ExperimentSpec(name="X", title="x", axes=({"name": "a"},))

    def test_unknown_scale_is_value_error(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_spec(get_spec("MAPSZ"), scale="huge")

    def test_toml_rejects_nested_null(self):
        spec = ExperimentSpec(name="X", title="x", params={"hole": None})
        with pytest.raises(SpecValidationError, match="null"):
            spec.to_toml()


class TestExpressionLanguage:
    def test_arithmetic_and_calls(self):
        ctx = {"density": 1.5, "size": 8.0}
        assert evaluate_expression("max(10, int(round(density * size * size)))", ctx) == 96

    def test_conditional_and_containers(self):
        ctx = {"clustered": True, "n": 5}
        value = evaluate_expression(
            "{'kind': 'clustered', 'n': n} if clustered else {'kind': 'uniform'}", ctx
        )
        assert value == {"kind": "clustered", "n": 5}

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(SpecValidationError, match="known names"):
            evaluate_expression("nope + 1", {"yep": 1})

    def test_non_whitelisted_call_rejected(self):
        with pytest.raises(SpecValidationError, match="whitelisted"):
            evaluate_expression("__import__('os')", {})

    def test_attribute_access_rejected(self):
        with pytest.raises(SpecValidationError, match="unsupported syntax"):
            evaluate_expression("x.__class__", {"x": 1})

    def test_dollar_escape(self):
        assert render_template("$$literal", {}) == "$literal"
        assert render_template("plain", {}) == "plain"
        assert render_template({"k": "$a + 1"}, {"a": 1}) == {"k": 2}


class TestFingerprintGolden:
    """Task identity vs the pre-redesign capture (warm caches must keep hitting)."""

    @pytest.fixture(scope="class")
    def golden(self):
        with GOLDEN_PATH.open(encoding="utf8") as handle:
            return json.load(handle)

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    @pytest.mark.parametrize("scale", ["small", "paper"])
    def test_fingerprints_match_pre_redesign_capture(self, golden, experiment_id, scale):
        fresh = capture_fingerprints(experiment_id, scale)
        assert fresh == golden[experiment_id][scale]


@pytest.mark.slow
class TestWarmCacheReplay:
    def test_pre_redesign_cache_replays_with_zero_dispatches(self, tmp_path):
        from repro.store import ResultStore

        cache_dir = tmp_path / "cache"
        shutil.copytree(DATA_DIR / "prebuilt_cache", cache_dir)
        store = ResultStore(cache_dir)
        for experiment_id in ("DUAL", "MAPSZ"):
            store.stats.reset()
            rows = run_spec(get_spec(experiment_id), scale="small", store=store)
            assert rows, experiment_id
            assert store.stats.misses == 0, (
                f"{experiment_id}: a pre-redesign cache entry stopped matching "
                f"({store.stats.snapshot()})"
            )
            assert store.stats.hits > 0


class TestCli:
    def run_cli(self, capsys, *argv):
        code = experiments_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_describe_every_id(self, capsys, experiment_id):
        code, out, _err = self.run_cli(capsys, "describe", experiment_id)
        assert code == 0
        assert experiment_id in out
        assert "resolved parameters" in out

    def test_describe_with_scale(self, capsys):
        code, out, _err = self.run_cli(capsys, "describe", "FIG5", "--scale", "paper")
        assert code == 0
        assert "showing: paper" in out

    def test_describe_spec_file(self, capsys):
        code, out, _err = self.run_cli(capsys, "describe", "--spec", str(EXAMPLE_SPEC))
        assert code == 0
        assert "CLUSTJAM" in out

    def test_list_subcommand(self, capsys):
        code, out, _err = self.run_cli(capsys, "list")
        assert code == 0
        for experiment_id in ALL_IDS:
            assert experiment_id in out

    def test_unknown_id_exits_2_listing_ids(self, capsys):
        code, _out, err = self.run_cli(capsys, "run", "FIG99")
        assert code == 2
        assert "unknown experiment" in err
        for experiment_id in ALL_IDS:
            assert experiment_id in err

    def test_describe_unknown_id_exits_2(self, capsys):
        code, _out, err = self.run_cli(capsys, "describe", "FIG99")
        assert code == 2
        assert "unknown experiment" in err

    def test_malformed_spec_file_exits_2_with_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "X"\nbogus = 1\nwrong = 2\n', encoding="utf8")
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(bad))
        assert code == 2
        assert "bogus" in err and "wrong" in err and "missing required" in err

    def test_unreadable_spec_file_exits_2(self, capsys, tmp_path):
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(tmp_path / "nope.toml"))
        assert code == 2
        assert "cannot read spec file" in err

    def test_invalid_toml_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("name = \n", encoding="utf8")
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(bad))
        assert code == 2
        assert "invalid TOML" in err

    def test_id_and_spec_together_exit_2(self, capsys):
        code, _out, err = self.run_cli(capsys, "run", "FIG5", "--spec", str(EXAMPLE_SPEC))
        assert code == 2
        assert "not both" in err

    def test_unknown_scale_exits_2(self, capsys):
        code, _out, err = self.run_cli(capsys, "run", "FIG5", "--scale", "huge")
        assert code == 2
        assert "unknown scale" in err

    def test_unknown_component_in_spec_exits_2(self, capsys, tmp_path):
        # A typo'd registry key surfaces mid-run; still a usage error, not a
        # traceback.
        bad = tmp_path / "bad_component.json"
        spec = load_spec(EXAMPLE_SPEC)
        data = spec.to_dict()
        data["deployment"] = {**data["deployment"], "kind": "unifrm"}
        bad.write_text(json.dumps(data), encoding="utf8")
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(bad))
        assert code == 2
        assert "unknown deployment 'unifrm'" in err and "clustered" in err

    def test_undeclared_scale_on_scaleless_spec_exits_2(self, capsys):
        # The example spec declares no scales; an *explicit* non-default scale
        # must error rather than silently running base parameters.
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(EXAMPLE_SPEC), "--scale", "paper")
        assert code == 2
        assert "unknown scale 'paper'" in err

    def test_top_level_help_reachable(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "run" in out and "describe" in out and "list" in out

    def test_legacy_form_still_runs(self, capsys):
        # Deprecated alias: experiment id without the 'run' subcommand.
        code, _out, err = self.run_cli(capsys, "FIG99")
        assert code == 2
        assert "deprecated" in err and "unknown experiment" in err

    def test_legacy_flag_first_form_still_routes_to_run(self, capsys):
        # Pre-PR 5 argparse accepted flags before the id.
        code, _out, err = self.run_cli(capsys, "--scale", "small", "FIG99")
        assert code == 2
        assert "deprecated" in err and "unknown experiment" in err

    def test_tolerance_search_spec_missing_candidates_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "search.json"
        bad.write_text(
            json.dumps({"name": "S", "title": "s", "driver": "tolerance_search"}),
            encoding="utf8",
        )
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(bad))
        assert code == 2
        assert "options.candidates" in err

    def test_dual_mode_spec_missing_params_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "dual.json"
        bad.write_text(
            json.dumps({"name": "D", "title": "d", "driver": "dual_mode"}), encoding="utf8"
        )
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(bad))
        assert code == 2
        assert "dual_mode driver requires" in err

    def test_bad_label_template_exits_2(self, capsys, tmp_path):
        spec = load_spec(EXAMPLE_SPEC)
        data = spec.to_dict()
        data["label"] = "budget={typo}"
        bad = tmp_path / "label.json"
        bad.write_text(json.dumps(data), encoding="utf8")
        code, _out, err = self.run_cli(capsys, "run", "--spec", str(bad))
        assert code == 2
        assert "label template" in err

    @pytest.mark.slow
    def test_run_spec_file_end_to_end(self, capsys):
        code, out, _err = self.run_cli(capsys, "run", "--spec", str(EXAMPLE_SPEC))
        assert code == 0
        assert "CLUSTJAM" in out
        assert "budget=0" in out and "budget=6" in out


class TestRegistryCompat:
    def test_experiments_mapping_view(self):
        assert list(EXPERIMENTS) == ALL_IDS
        assert EXPERIMENTS["FIG5"].title.startswith("Crash resilience")
        assert len(EXPERIMENTS) == 8
        assert available_experiments() == ALL_IDS

    def test_describe_spec_mentions_driver_and_grid(self):
        text = describe_spec(get_spec("FIG7"), scale="small")
        assert "tolerance_search" in text
        assert "axes" in text
