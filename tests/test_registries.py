"""Tests of the open component registries (repro.registry).

Covers the registration contract the PR 5 redesign introduced: duplicate keys
raise immediately, unknown keys list the candidates, lookups are
alias-tolerant, and every registered protocol declares the shareable-contract
fields the cohort runtime requires.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import pytest

from repro.registry import (
    CHANNELS,
    DEPLOYMENTS,
    DRIVERS,
    EXPERIMENT_SPECS,
    FAULT_PLANS,
    METRICS,
    PROTOCOLS,
    ChannelPlugin,
    ProtocolPlugin,
    Registry,
    RegistryError,
)


class TestRegistryMechanics:
    def test_duplicate_key_raises(self):
        registry = Registry("widget")
        registry.register("alpha", object())
        with pytest.raises(RegistryError, match="duplicate"):
            registry.register("alpha", object())

    def test_duplicate_alias_raises(self):
        registry = Registry("widget")
        registry.register("alpha", object(), aliases=("a",))
        with pytest.raises(RegistryError, match="duplicate"):
            registry.register("beta", object(), aliases=("a",))

    def test_alias_collision_with_existing_key_raises(self):
        registry = Registry("widget")
        registry.register("alpha", object())
        with pytest.raises(RegistryError, match="duplicate"):
            registry.register("beta", object(), aliases=("alpha",))

    def test_unknown_key_lists_candidates(self):
        registry = Registry("widget")
        registry.register("alpha", object(), aliases=("a",))
        registry.register("beta", object())
        with pytest.raises(RegistryError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message
        assert "aliases: a" in message

    def test_registry_error_is_key_and_value_error(self):
        # Both historical lookup contracts must keep working.
        assert issubclass(RegistryError, KeyError)
        assert issubclass(RegistryError, ValueError)

    def test_lookup_ignores_case_dash_underscore(self):
        registry = Registry("widget")
        sentinel = object()
        registry.register("two_words", sentinel)
        for variant in ("two_words", "TWO_WORDS", "two-words", "twowords", "Two-Words"):
            assert registry.get(variant) is sentinel
            assert registry.canonical(variant) == "two_words"

    def test_duplicate_registration_on_real_registry_raises(self):
        with pytest.raises(RegistryError, match="duplicate"):
            PROTOCOLS.register("neighborwatch", object())

    def test_contains_and_keys(self):
        assert "neighborwatch" in PROTOCOLS
        assert "nw" in PROTOCOLS
        assert "quantum" not in PROTOCOLS
        assert PROTOCOLS.keys() == ["neighborwatch", "neighborwatch2", "multipath", "epidemic"]


class TestBuiltinRegistrations:
    def test_expected_keys(self):
        assert CHANNELS.keys() == ["unitdisk", "friis"]
        assert DEPLOYMENTS.keys() == ["uniform", "clustered", "fixed"]
        assert FAULT_PLANS.keys() == ["target_density_crash", "budgeted_jammer", "random_liar"]
        assert set(DRIVERS.keys()) == {"sweep", "tolerance_search", "dual_mode"}
        assert "default" in METRICS.keys()
        assert EXPERIMENT_SPECS.keys() == [
            "FIG5", "JAM", "FIG6", "FIG7", "CLUST", "MAPSZ", "EPID", "DUAL"
        ]

    @pytest.mark.parametrize(
        "registry",
        [PROTOCOLS, CHANNELS, DEPLOYMENTS, FAULT_PLANS, METRICS, DRIVERS, EXPERIMENT_SPECS],
        ids=lambda registry: registry.kind,
    )
    def test_every_entry_passes_its_contract(self, registry):
        registry.validate_all()

    def test_historical_protocol_aliases_resolve(self):
        for alias, canonical in [
            ("nw", "neighborwatch"),
            ("neighborwatchrb", "neighborwatch"),
            ("nw2", "neighborwatch2"),
            ("2vote", "neighborwatch2"),
            ("2-vote", "neighborwatch2"),
            ("mp", "multipath"),
            ("multipathrb", "multipath"),
            ("flood", "epidemic"),
            ("flooding", "epidemic"),
        ]:
            assert PROTOCOLS.canonical(alias) == canonical

    def test_experiment_lookup_is_case_insensitive(self):
        assert EXPERIMENT_SPECS.canonical("fig5") == "FIG5"
        assert EXPERIMENT_SPECS.get("dual").name == "DUAL"


class TestProtocolContract:
    """Every registered protocol must declare the cohort-runtime contract."""

    @pytest.mark.parametrize("key", ["neighborwatch", "neighborwatch2", "multipath", "epidemic"])
    def test_declares_shareable_contract_fields(self, key):
        plugin = PROTOCOLS.get(key)
        assert plugin.protocol_classes, f"{key} declares no protocol classes"
        for cls in plugin.protocol_classes:
            assert isinstance(cls.shareable, bool)
            assert cls.shared_observation_attr is None or isinstance(
                cls.shared_observation_attr, str
            )
            assert callable(cls.cohort_key)

    def test_plugins_are_picklable(self):
        for key in PROTOCOLS.keys():
            pickle.loads(pickle.dumps(PROTOCOLS.get(key)))

    def test_missing_shareable_declaration_is_rejected(self):
        registry = Registry(
            "protocol", validator=PROTOCOLS._validator, instantiate=True
        )

        class Bare:
            pass

        @registry.register("bogus")
        class BogusPlugin(ProtocolPlugin):
            protocol_classes = (Bare,)

            def build(self, config):  # pragma: no cover - never called
                return None

            def build_liar(self, config, fake_message):  # pragma: no cover
                return None

            def build_schedule(self, deployment, config):  # pragma: no cover
                return None

        with pytest.raises(RegistryError, match="shareable"):
            registry.get("bogus")

    def test_shareable_without_cohort_key_is_rejected(self):
        from repro.core.protocol import Protocol

        registry = Registry(
            "protocol", validator=PROTOCOLS._validator, instantiate=True
        )

        class NoKey(Protocol):
            shareable = True
            shared_observation_attr = None

        @registry.register("nokey")
        class NoKeyPlugin(ProtocolPlugin):
            protocol_classes = (NoKey,)

            def build(self, config):  # pragma: no cover - never called
                return None

            def build_liar(self, config, fake_message):  # pragma: no cover
                return None

            def build_schedule(self, deployment, config):  # pragma: no cover
                return None

        with pytest.raises(RegistryError, match="cohort_key"):
            registry.get("nokey")

    def test_factory_registries_reject_non_dataclasses(self):
        registry = Registry("deployment", validator=DEPLOYMENTS._validator)

        def not_a_dataclass(seed):  # pragma: no cover - never called
            return None

        registry.register("closurelike", not_a_dataclass)
        with pytest.raises(RegistryError, match="dataclass"):
            registry.get("closurelike")

    def test_factory_entries_are_fingerprintable(self):
        from repro.sim.runner import fingerprint_payload

        for registry in (DEPLOYMENTS, FAULT_PLANS):
            for key in registry.keys():
                cls = registry.get(key)
                # Classes themselves reduce via their qualified name; what
                # matters is that *instances* are dataclasses, which
                # fingerprint_payload reduces field-by-field.
                assert hasattr(cls, "__dataclass_fields__")
                assert callable(fingerprint_payload)


class TestBuilderViaRegistries:
    def test_channel_plugins_build_from_config(self):
        from repro.sim.config import ScenarioConfig
        from repro.sim.radio import FriisChannel, UnitDiskChannel

        config = ScenarioConfig(radius=3.0, loss_probability=0.1)
        assert isinstance(CHANNELS.get("unitdisk").build(config), UnitDiskChannel)
        assert isinstance(CHANNELS.get("friis").build(config), FriisChannel)

    def test_protocol_plugin_builders_match_builder_output(self):
        from repro.core.neighborwatch import NeighborWatchNode
        from repro.sim.config import ScenarioConfig

        config = ScenarioConfig(protocol="neighborwatch2", radius=3.0)
        honest = PROTOCOLS.get(config.protocol).build(config)
        assert isinstance(honest, NeighborWatchNode)
        assert honest.config.votes_required == 2
        liar = PROTOCOLS.get(config.protocol).build_liar(config, (1, 0, 1, 0))
        assert isinstance(liar, NeighborWatchNode)
        assert liar.config.votes_required == 2

    def test_scenario_config_rejects_unknown_components(self):
        from repro.sim.config import ScenarioConfig

        with pytest.raises(ValueError, match="unknown protocol"):
            ScenarioConfig(protocol="quantum")
        with pytest.raises(ValueError, match="unknown channel"):
            ScenarioConfig(channel="string-and-cans")
