"""Unit tests for the TDMA schedules (repro.core.schedule)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regions import SquareGrid
from repro.core.schedule import PHASES_PER_SLOT, SOURCE_SLOT, NodeSchedule, SquareSchedule
from repro.topology.deployment import grid_jittered_deployment, uniform_deployment
from repro.topology.geometry import pairwise_distances


@pytest.fixture
def grid_deployment():
    return grid_jittered_deployment(10, 10, spacing=1.0)


@pytest.fixture
def square_schedule(grid_deployment):
    grid = SquareGrid(10, 10, side=1.0)
    return SquareSchedule(grid, radius=3.0, positions=grid_deployment.positions,
                          source_index=grid_deployment.source_index)


class TestRoundArithmetic:
    def test_locate_round_roundtrip(self, square_schedule):
        sched = square_schedule
        for round_index in (0, 5, 6, 127, sched.rounds_per_cycle, sched.rounds_per_cycle * 3 + 17):
            cycle, slot, phase = sched.locate_round(round_index)
            assert sched.round_index(cycle, slot, phase) == round_index

    def test_rounds_per_cycle(self, square_schedule):
        assert square_schedule.rounds_per_cycle == square_schedule.num_slots * PHASES_PER_SLOT

    def test_locate_negative_round(self, square_schedule):
        with pytest.raises(ValueError):
            square_schedule.locate_round(-1)

    def test_round_index_validates(self, square_schedule):
        with pytest.raises(ValueError):
            square_schedule.round_index(0, square_schedule.num_slots, 0)
        with pytest.raises(ValueError):
            square_schedule.round_index(0, 0, PHASES_PER_SLOT)
        with pytest.raises(ValueError):
            square_schedule.round_index(-1, 0, 0)

    def test_slots_elapsed(self, square_schedule):
        assert square_schedule.slots_elapsed(0) == 0
        assert square_schedule.slots_elapsed(6) == 1
        assert square_schedule.slots_elapsed(13) == 2


class TestSquareSchedule:
    def test_source_owns_slot_zero(self, square_schedule, grid_deployment):
        assert square_schedule.slot_of_node(grid_deployment.source_index) == SOURCE_SLOT
        assert square_schedule.owners_of_slot(SOURCE_SLOT) == (grid_deployment.source_index,)

    def test_source_excluded_from_square_slot_owners(self, square_schedule, grid_deployment):
        src = grid_deployment.source_index
        for slot in range(1, square_schedule.num_slots):
            assert src not in square_schedule.owners_of_slot(slot)

    def test_same_square_same_slot(self, square_schedule, grid_deployment):
        src = grid_deployment.source_index
        for node in range(grid_deployment.num_nodes):
            if node == src:
                continue
            sq = square_schedule.square_of_node(node)
            assert square_schedule.slot_of_node(node) == square_schedule.slot_of_square(sq)

    def test_adjacent_squares_have_distinct_slots(self, square_schedule):
        grid = square_schedule.grid
        for square in grid.iter_squares():
            slot = square_schedule.slot_of_square(square)
            for neighbor in grid.neighbors(square):
                assert square_schedule.slot_of_square(neighbor) != slot

    def test_slot_reuse_respects_separation(self, square_schedule):
        """The paper's rule: devices of *different* squares sharing a slot are
        at least 3R apart (devices of the same square are deliberate co-senders)."""
        positions = square_schedule.positions
        for slot in range(1, square_schedule.num_slots):
            owners = square_schedule.owners_of_slot(slot)
            if len(owners) < 2:
                continue
            squares = [square_schedule.square_of_node(o) for o in owners]
            dist = pairwise_distances(positions[list(owners)], norm="l2")
            for i in range(len(owners)):
                for j in range(i + 1, len(owners)):
                    if squares[i] != squares[j]:
                        assert dist[i, j] >= square_schedule.separation - 1e-9

    def test_members_of_square_consistent(self, square_schedule, grid_deployment):
        for node in range(grid_deployment.num_nodes):
            sq = square_schedule.square_of_node(node)
            assert node in square_schedule.members_of_square(sq)

    def test_listening_slots_include_own_and_source(self, square_schedule, grid_deployment):
        node = 0 if grid_deployment.source_index != 0 else 1
        slots = square_schedule.listening_slots_of_node(node)
        assert SOURCE_SLOT in slots
        assert square_schedule.slot_of_node(node) in slots
        # at most: source + own + 8 neighbors
        assert len(slots) <= 10

    def test_num_slots_is_order_r_squared(self):
        """The schedule size does not grow with the map, only with R / side."""
        small = grid_jittered_deployment(8, 8, spacing=1.0)
        large = grid_jittered_deployment(20, 20, spacing=1.0)
        sched_small = SquareSchedule(SquareGrid(8, 8, 1.0), 3.0, small.positions, small.source_index)
        sched_large = SquareSchedule(SquareGrid(20, 20, 1.0), 3.0, large.positions, large.source_index)
        assert sched_small.num_slots == sched_large.num_slots

    def test_squares_of_slot_inverse(self, square_schedule):
        for slot in range(1, square_schedule.num_slots):
            for square in square_schedule.squares_of_slot(slot):
                assert square_schedule.slot_of_square(square) == slot

    def test_invalid_source_index(self, grid_deployment):
        grid = SquareGrid(10, 10, side=1.0)
        with pytest.raises(ValueError):
            SquareSchedule(grid, 3.0, grid_deployment.positions, source_index=10_000)

    def test_invalid_radius(self, grid_deployment):
        grid = SquareGrid(10, 10, side=1.0)
        with pytest.raises(ValueError):
            SquareSchedule(grid, 0.0, grid_deployment.positions, grid_deployment.source_index)


class TestNodeSchedule:
    @pytest.fixture
    def node_schedule(self):
        dep = uniform_deployment(80, 10, 10, rng=3)
        return dep, NodeSchedule(dep.positions, radius=3.0, source_index=dep.source_index)

    def test_source_owns_slot_zero(self, node_schedule):
        dep, sched = node_schedule
        assert sched.slot_of_node(dep.source_index) == SOURCE_SLOT
        assert sched.owners_of_slot(SOURCE_SLOT) == (dep.source_index,)

    def test_every_node_has_a_slot(self, node_schedule):
        dep, sched = node_schedule
        for node in range(dep.num_nodes):
            slot = sched.slot_of_node(node)
            assert 0 <= slot < sched.num_slots
            assert node in sched.owners_of_slot(slot)

    def test_conflict_freedom(self, node_schedule):
        """No two devices within the separation distance share a slot."""
        dep, sched = node_schedule
        dist = pairwise_distances(dep.positions, norm="l2")
        n = dep.num_nodes
        for a in range(n):
            for b in range(a + 1, n):
                if dist[a, b] <= sched.separation:
                    assert sched.slot_of_node(a) != sched.slot_of_node(b)

    def test_neighbor_slots_cover_neighbors(self, node_schedule):
        dep, sched = node_schedule
        dist = pairwise_distances(dep.positions, norm="l2")
        for node in range(0, dep.num_nodes, 7):
            slots = set(sched.neighbor_slots_of_node(node))
            for other in range(dep.num_nodes):
                if other != node and dist[node, other] <= 3.0:
                    assert sched.slot_of_node(other) in slots

    def test_owner_in_neighborhood_unique(self, node_schedule):
        dep, sched = node_schedule
        dist = pairwise_distances(dep.positions, norm="l2")
        for node in range(0, dep.num_nodes, 5):
            for other in range(dep.num_nodes):
                if other != node and dist[node, other] <= 3.0:
                    slot = sched.slot_of_node(other)
                    assert sched.owner_in_neighborhood(slot, node) == other

    def test_owner_in_neighborhood_none_when_out_of_range(self, node_schedule):
        dep, sched = node_schedule
        dist = pairwise_distances(dep.positions, norm="l2")
        # find a slot whose owners are all far from node 0
        for slot in range(sched.num_slots):
            owners = sched.owners_of_slot(slot)
            if owners and all(dist[0, o] > 3.0 for o in owners):
                assert sched.owner_in_neighborhood(slot, 0) is None
                break

    def test_deterministic(self):
        dep = uniform_deployment(60, 10, 10, rng=5)
        s1 = NodeSchedule(dep.positions, 3.0, dep.source_index)
        s2 = NodeSchedule(dep.positions, 3.0, dep.source_index)
        assert [s1.slot_of_node(i) for i in range(60)] == [s2.slot_of_node(i) for i in range(60)]

    def test_phases_per_slot_configurable(self):
        dep = uniform_deployment(30, 8, 8, rng=2)
        sched = NodeSchedule(dep.positions, 3.0, dep.source_index, phases_per_slot=1)
        assert sched.phases_per_slot == 1
        assert sched.rounds_per_cycle == sched.num_slots

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
    def test_conflict_freedom_property(self, n, seed):
        dep = uniform_deployment(n, 8, 8, rng=seed)
        sched = NodeSchedule(dep.positions, radius=2.0, source_index=dep.source_index, separation=4.0)
        dist = pairwise_distances(dep.positions, norm="l2")
        for a in range(n):
            for b in range(a + 1, n):
                if dist[a, b] <= 4.0:
                    assert sched.slot_of_node(a) != sched.slot_of_node(b)


class TestIterSlotStarts:
    """The engine's cycle iterator must agree with locate_round slot by slot."""

    def test_matches_locate_round(self, square_schedule):
        sched = square_schedule
        phases = sched.phases_per_slot
        it = sched.iter_slot_starts(0)
        for k in range(3 * sched.num_slots + 5):
            round_index = k * phases
            assert next(it) == sched.locate_round(round_index)[:2]

    def test_starts_mid_schedule(self, square_schedule):
        sched = square_schedule
        start = 2 * sched.phases_per_slot
        it = sched.iter_slot_starts(start)
        assert next(it) == sched.locate_round(start)[:2]

    def test_unaligned_start_rejected(self, square_schedule):
        if square_schedule.phases_per_slot < 2:
            pytest.skip("needs multi-phase slots")
        with pytest.raises(ValueError):
            next(square_schedule.iter_slot_starts(1))


class TestNeighborSlotTable:
    """neighbor_slots_of_node answers from a cached all-nodes table; the
    answers must equal the direct per-node computation."""

    def test_table_matches_direct_computation(self):
        dep = uniform_deployment(50, 8, 8, rng=9)
        sched = NodeSchedule(dep.positions, 3.0, dep.source_index)
        pos = sched.positions
        for node in range(50):
            d = np.sqrt(np.sum((pos - pos[node][None, :]) ** 2, axis=1))
            nearby = np.nonzero(d <= sched.radius)[0]
            expected = sorted({0} | {int(sched.slot_of_node(int(nb))) for nb in nearby})
            assert sched.neighbor_slots_of_node(node) == expected

    def test_custom_radius_gets_its_own_table(self):
        dep = uniform_deployment(30, 8, 8, rng=4)
        sched = NodeSchedule(dep.positions, 2.0, dep.source_index)
        wide = sched.neighbor_slots_of_node(0, listen_radius=6.0)
        narrow = sched.neighbor_slots_of_node(0, listen_radius=2.0)
        assert set(narrow) <= set(wide)

    def test_returned_lists_are_copies(self):
        dep = uniform_deployment(20, 8, 8, rng=3)
        sched = NodeSchedule(dep.positions, 3.0, dep.source_index)
        first = sched.neighbor_slots_of_node(1)
        first.append(999)
        assert 999 not in sched.neighbor_slots_of_node(1)


class TestGreedyColouringReference:
    """The vectorised colouring loop must assign exactly the slots the
    original per-neighbor Python loop did."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=500))
    def test_matches_reference_implementation(self, n, seed):
        dep = uniform_deployment(n, 8, 8, rng=seed)
        sched = NodeSchedule(dep.positions, 2.0, dep.source_index, separation=4.0)
        dist = pairwise_distances(sched.positions, norm="l2")
        conflict = dist <= sched.separation
        np.fill_diagonal(conflict, False)
        reference = np.zeros(n, dtype=int)
        for node in range(n):
            if node == sched.source_index:
                reference[node] = 0
                continue
            used = {0}
            for nb in np.nonzero(conflict[node])[0]:
                if nb < node or nb == sched.source_index:
                    used.add(int(reference[nb]))
            slot = 1
            while slot in used:
                slot += 1
            reference[node] = slot
        assert [sched.slot_of_node(i) for i in range(n)] == reference.tolist()


class TestBucketedNodeSchedule:
    """Above BUCKETED_SCHEDULE_MIN_NODES the conflict and listening
    neighborhoods come from grid-bucketed queries; the slot assignment and the
    neighbor-slot tables must equal the dense-matrix oracle exactly."""

    @pytest.mark.parametrize("norm", ["l2", "linf"])
    def test_matches_dense_oracle(self, norm, monkeypatch):
        import repro.core.schedule as schedule_module

        dep = uniform_deployment(400, 25, 25, rng=17)
        monkeypatch.setattr(schedule_module, "BUCKETED_SCHEDULE_MIN_NODES", 10**9)
        dense = NodeSchedule(dep.positions, 2.0, dep.source_index, norm=norm)
        dense_table = [dense.neighbor_slots_of_node(i) for i in range(400)]
        monkeypatch.setattr(schedule_module, "BUCKETED_SCHEDULE_MIN_NODES", 1)
        bucketed = NodeSchedule(dep.positions, 2.0, dep.source_index, norm=norm)
        bucketed_table = [bucketed.neighbor_slots_of_node(i) for i in range(400)]
        assert [bucketed.slot_of_node(i) for i in range(400)] == [
            dense.slot_of_node(i) for i in range(400)
        ]
        assert bucketed_table == dense_table
        assert bucketed.num_slots == dense.num_slots

    def test_listen_radius_override_matches(self, monkeypatch):
        import repro.core.schedule as schedule_module

        dep = uniform_deployment(150, 12, 12, rng=3)
        monkeypatch.setattr(schedule_module, "BUCKETED_SCHEDULE_MIN_NODES", 1)
        bucketed = NodeSchedule(dep.positions, 2.0, dep.source_index)
        monkeypatch.setattr(schedule_module, "BUCKETED_SCHEDULE_MIN_NODES", 10**9)
        dense = NodeSchedule(dep.positions, 2.0, dep.source_index)
        for node in (0, 7, 149):
            assert bucketed.neighbor_slots_of_node(node, 5.0) == dense.neighbor_slots_of_node(node, 5.0)
