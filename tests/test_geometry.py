"""Unit tests for repro.topology.geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology import geometry as geo


class TestPoint:
    def test_linf_distance(self):
        a = geo.Point(0.0, 0.0)
        b = geo.Point(3.0, -4.0)
        assert a.linf(b) == pytest.approx(4.0)

    def test_l2_distance(self):
        a = geo.Point(0.0, 0.0)
        b = geo.Point(3.0, -4.0)
        assert a.l2(b) == pytest.approx(5.0)

    def test_as_array(self):
        arr = geo.Point(1.5, 2.5).as_array()
        assert arr.shape == (2,)
        assert arr.tolist() == [1.5, 2.5]

    def test_point_is_hashable(self):
        assert len({geo.Point(1, 2), geo.Point(1, 2), geo.Point(2, 1)}) == 2


class TestAsPositions:
    def test_accepts_list_of_tuples(self):
        pos = geo.as_positions([(0, 0), (1, 2)])
        assert pos.shape == (2, 2)

    def test_accepts_points(self):
        pos = geo.as_positions([geo.Point(0, 0), geo.Point(3, 4)])
        assert pos[1, 1] == 4.0

    def test_accepts_empty(self):
        assert geo.as_positions([]).shape == (0, 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            geo.as_positions(np.zeros((3, 3)))

    def test_passthrough_array_is_float(self):
        pos = geo.as_positions(np.array([[1, 2], [3, 4]], dtype=int))
        assert pos.dtype == float


class TestPairwiseDistances:
    def test_linf_matrix(self):
        pos = [(0, 0), (1, 3), (2, 1)]
        dist = geo.pairwise_distances(pos, norm="linf")
        assert dist[0, 1] == pytest.approx(3.0)
        assert dist[1, 2] == pytest.approx(2.0)
        assert np.allclose(np.diag(dist), 0.0)

    def test_l2_matrix_symmetry(self):
        pos = np.random.default_rng(0).uniform(0, 10, size=(20, 2))
        dist = geo.pairwise_distances(pos, norm="l2")
        assert np.allclose(dist, dist.T)

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            geo.pairwise_distances([(0, 0)], norm="l1")


class TestNeighborhoods:
    def test_neighbors_within_linf(self):
        pos = [(0, 0), (2, 0), (0, 2), (3, 3), (5, 5)]
        idx = geo.neighbors_within(pos, (0, 0), 3, norm="linf")
        assert set(idx.tolist()) == {0, 1, 2, 3}

    def test_neighbors_within_strict(self):
        pos = [(0, 0), (3, 0)]
        assert 1 in geo.neighbors_within(pos, (0, 0), 3, norm="linf").tolist()
        assert 1 not in geo.neighbors_within(pos, (0, 0), 3, norm="linf", strict=True).tolist()

    def test_neighborhood_matrix_excludes_self(self):
        pos = [(0, 0), (1, 0), (10, 10)]
        adj = geo.neighborhood_matrix(pos, 2, norm="l2")
        assert not adj[0, 0]
        assert adj[0, 1] and adj[1, 0]
        assert not adj[0, 2]

    def test_neighborhood_counts_grid(self):
        # On a 5x5 unit grid with R=1 (L-inf), interior nodes have 8 neighbors.
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        pos = np.column_stack([xs.ravel(), ys.ravel()])
        counts = geo.neighborhood_counts(pos, 1.0, norm="linf")
        assert counts.max() == 8
        assert counts.min() == 3  # corners

    def test_grid_neighborhood_size_matches_formula(self):
        # The paper: a neighborhood of radius R on the unit grid holds (2R+1)^2 - 1 others.
        xs, ys = np.meshgrid(np.arange(9.0), np.arange(9.0))
        pos = np.column_stack([xs.ravel(), ys.ravel()])
        counts = geo.neighborhood_counts(pos, 2.0, norm="linf")
        assert counts.max() == (2 * 2 + 1) ** 2 - 1


class TestBoundingAndCommonNeighborhood:
    def test_bounding_box(self):
        assert geo.bounding_box([(1, 2), (3, -1)]) == (1.0, -1.0, 3.0, 2.0)

    def test_bounding_box_empty(self):
        assert geo.bounding_box(np.empty((0, 2))) == (0.0, 0.0, 0.0, 0.0)

    def test_fits_in_common_neighborhood_true(self):
        pos = [(0, 0), (2, 2), (1, 0)]
        assert geo.fits_in_common_neighborhood(pos, radius=1.0)

    def test_fits_in_common_neighborhood_false(self):
        pos = [(0, 0), (3, 0)]
        assert not geo.fits_in_common_neighborhood(pos, radius=1.0)

    def test_fits_empty_set(self):
        assert geo.fits_in_common_neighborhood(np.empty((0, 2)), radius=1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50), st.floats(min_value=-50, max_value=50)
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.5, max_value=10),
    )
    def test_fits_matches_bruteforce_center(self, points, radius):
        """The box test agrees with an explicit center construction."""
        pos = geo.as_positions(points)
        xmin, ymin, xmax, ymax = geo.bounding_box(pos)
        expected = (xmax - xmin) <= 2 * radius + 1e-9 and (ymax - ymin) <= 2 * radius + 1e-9
        assert geo.fits_in_common_neighborhood(pos, radius) == expected


class TestDiameters:
    def test_linf_diameter_hops(self):
        pos = [(0, 0), (10, 0), (0, 7)]
        assert geo.linf_diameter_hops(pos, radius=2.0) == 5

    def test_diameter_single_point(self):
        assert geo.linf_diameter_hops([(1, 1)], radius=2.0) == 0

    def test_diameter_invalid_radius(self):
        with pytest.raises(ValueError):
            geo.linf_diameter_hops([(0, 0), (1, 1)], radius=0)

    def test_grid_hop_distance(self):
        assert geo.grid_hop_distance((0, 0), (7, 3), radius=2.0) == 4
        assert geo.grid_hop_distance((0, 0), (0, 0), radius=2.0) == 0

    def test_grid_hop_distance_invalid_radius(self):
        with pytest.raises(ValueError):
            geo.grid_hop_distance((0, 0), (1, 1), radius=0.0)
