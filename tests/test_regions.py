"""Unit tests for the NeighborWatchRB square partition (repro.core.regions)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.regions import SquareGrid, default_square_side


class TestDefaultSquareSide:
    def test_analytical_model(self):
        assert default_square_side(4, norm="linf") == 2.0
        assert default_square_side(5, norm="linf") == 3.0  # ceil(5/2)

    def test_simulation_model(self):
        assert default_square_side(6, norm="l2") == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_square_side(0)
        with pytest.raises(ValueError):
            default_square_side(4, norm="weird")


class TestSquareGrid:
    def test_dimensions(self):
        grid = SquareGrid(width=10, height=6, side=2.0)
        assert grid.num_cols == 5
        assert grid.num_rows == 3
        assert grid.num_squares == 15

    def test_square_of_interior_point(self):
        grid = SquareGrid(width=10, height=10, side=2.0)
        assert grid.square_of((3.0, 5.5)) == (1, 2)

    def test_square_of_boundary_folds_in(self):
        grid = SquareGrid(width=10, height=10, side=2.0)
        assert grid.square_of((10.0, 10.0)) == (4, 4)

    def test_squares_of_vectorised_matches_scalar(self):
        grid = SquareGrid(width=8, height=8, side=1.5)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 8, size=(50, 2))
        assert grid.squares_of(pts) == [grid.square_of(p) for p in pts]

    def test_flat_index_roundtrip(self):
        grid = SquareGrid(width=9, height=7, side=1.0)
        for square in grid.iter_squares():
            assert grid.square_from_flat(grid.flat_index(square)) == square

    def test_flat_index_out_of_range(self):
        grid = SquareGrid(width=4, height=4, side=2.0)
        with pytest.raises(ValueError):
            grid.flat_index((5, 0))
        with pytest.raises(ValueError):
            grid.square_from_flat(99)

    def test_center(self):
        grid = SquareGrid(width=10, height=10, side=2.0)
        assert grid.center((1, 2)) == (3.0, 5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SquareGrid(width=10, height=10, side=0)
        with pytest.raises(ValueError):
            SquareGrid(width=0, height=10, side=1)


class TestNeighborRelation:
    def test_interior_has_eight_neighbors(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert len(grid.neighbors((5, 5))) == 8

    def test_corner_has_three_neighbors(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert len(grid.neighbors((0, 0))) == 3

    def test_include_self(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert (5, 5) in grid.neighbors((5, 5), include_self=True)
        assert (5, 5) not in grid.neighbors((5, 5))

    def test_are_neighbors_symmetric(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert grid.are_neighbors((2, 3), (3, 4))
        assert grid.are_neighbors((3, 4), (2, 3))
        assert not grid.are_neighbors((2, 3), (2, 3))
        assert not grid.are_neighbors((2, 3), (4, 3))

    @given(st.floats(min_value=1.0, max_value=10.0))
    def test_paper_square_side_keeps_neighbors_in_range_l2(self, radius):
        """The simulation square side R/3 keeps diagonal neighbors in L2 range."""
        grid = SquareGrid(width=30, height=30, side=radius / 3.0)
        assert grid.validate_for_radius(radius, norm="l2")

    @given(st.integers(min_value=1, max_value=10))
    def test_paper_square_side_keeps_neighbors_in_range_linf(self, radius):
        """The analytical square side ceil(R/2) keeps neighbors in L-inf range...

        ...only when ceil(R/2) <= R/2 holds exactly (even R); for odd R the
        paper's ceiling slightly exceeds R/2 and the guarantee needs R >= 2.
        This mirrors the paper's implicit assumption that R is large.
        """
        side = math.ceil(radius / 2)
        grid = SquareGrid(width=30, height=30, side=side)
        assert grid.max_intra_neighbor_distance("linf") == 2 * side
        if radius % 2 == 0:
            assert grid.validate_for_radius(radius, norm="linf")


class TestOccupancy:
    def test_occupancy_partitions_nodes(self):
        grid = SquareGrid(width=6, height=6, side=2.0)
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 6, size=(40, 2))
        occ = grid.occupancy(pos)
        all_ids = sorted(i for ids in occ.values() for i in ids)
        assert all_ids == list(range(40))

    def test_occupancy_membership_consistent(self):
        grid = SquareGrid(width=6, height=6, side=2.0)
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 6, size=(30, 2))
        occ = grid.occupancy(pos)
        for square, ids in occ.items():
            for i in ids:
                assert grid.square_of(pos[i]) == square


class TestFlatSquaresOf:
    """The vectorised flat square assignment must match square_of per node."""

    @given(
        side=st.sampled_from([1.0, 2.0, 3.0]),
        seed=st.integers(0, 100),
        count=st.integers(1, 40),
    )
    def test_matches_scalar_square_of(self, side, seed, count):
        grid = SquareGrid(width=12, height=9, side=side)
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0.0, [12.0, 9.0], size=(count, 2))
        flat = grid.flat_squares_of(pos)
        for i in range(count):
            assert grid.square_from_flat(int(flat[i])) == grid.square_of(pos[i])

    def test_upper_edge_folds_into_last_square(self):
        grid = SquareGrid(width=6, height=6, side=2.0)
        flat = grid.flat_squares_of(np.array([[6.0, 6.0], [0.0, 0.0]]))
        assert grid.square_from_flat(int(flat[0])) == (2, 2)
        assert grid.square_from_flat(int(flat[1])) == (0, 0)


class TestRegionTiling:
    def test_audible_pairs_span_adjacent_tiles_only(self):
        """Tile side >= interaction radius: links stay within the 8-neighborhood."""
        from repro.sim.tiling import RegionTiling
        from repro.topology.grid import GridBuckets

        rng = np.random.default_rng(9)
        pos = rng.uniform(0.0, 20.0, size=(300, 2))
        radius = 3.0
        tiling = RegionTiling(pos, side=radius)
        indptr, indices = GridBuckets(pos, cell_size=radius).neighbor_arrays(
            radius, "l2", include_self=True
        )
        grid = tiling.grid
        src = np.repeat(np.arange(300), np.diff(indptr))
        for a, b in zip(src.tolist(), indices.tolist()):
            sq_a = grid.square_from_flat(int(tiling.tile_of[a]))
            sq_b = grid.square_from_flat(int(tiling.tile_of[b]))
            assert sq_a == sq_b or grid.are_neighbors(sq_a, sq_b)

    def test_classify_links_counts(self):
        from repro.sim.tiling import RegionTiling

        # Two nodes in one tile, one across the boundary; symmetric CSR with
        # self-links: 2 interior directed links, 2 boundary, diagonal excluded.
        pos = np.array([[0.5, 0.5], [0.6, 0.5], [1.5, 0.5]])
        tiling = RegionTiling(pos, side=1.0)
        indptr = np.array([0, 3, 6, 8])
        indices = np.array([0, 1, 2, 0, 1, 2, 2, 0])  # 0<->1 same tile, 0<->2 cross
        interior, boundary = tiling.classify_links(indptr, indices)
        assert interior == 2
        assert boundary == 3  # 1->2, 2->0 and 0->2 cross tiles
        assert tiling.occupied_tiles == 2

    def test_info_shape(self):
        from repro.sim.tiling import RegionTiling

        tiling = RegionTiling(np.array([[0.2, 0.2], [5.0, 5.0]]), side=2.0)
        info = tiling.info()
        assert set(info) == {"tiles", "occupied_tiles", "tile_side", "grid_cols", "grid_rows"}
        assert info["occupied_tiles"] == 2

    def test_side_must_be_positive(self):
        from repro.sim.tiling import RegionTiling

        with pytest.raises(ValueError):
            RegionTiling(np.zeros((2, 2)), side=0.0)
