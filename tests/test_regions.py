"""Unit tests for the NeighborWatchRB square partition (repro.core.regions)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.regions import SquareGrid, default_square_side


class TestDefaultSquareSide:
    def test_analytical_model(self):
        assert default_square_side(4, norm="linf") == 2.0
        assert default_square_side(5, norm="linf") == 3.0  # ceil(5/2)

    def test_simulation_model(self):
        assert default_square_side(6, norm="l2") == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_square_side(0)
        with pytest.raises(ValueError):
            default_square_side(4, norm="weird")


class TestSquareGrid:
    def test_dimensions(self):
        grid = SquareGrid(width=10, height=6, side=2.0)
        assert grid.num_cols == 5
        assert grid.num_rows == 3
        assert grid.num_squares == 15

    def test_square_of_interior_point(self):
        grid = SquareGrid(width=10, height=10, side=2.0)
        assert grid.square_of((3.0, 5.5)) == (1, 2)

    def test_square_of_boundary_folds_in(self):
        grid = SquareGrid(width=10, height=10, side=2.0)
        assert grid.square_of((10.0, 10.0)) == (4, 4)

    def test_squares_of_vectorised_matches_scalar(self):
        grid = SquareGrid(width=8, height=8, side=1.5)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 8, size=(50, 2))
        assert grid.squares_of(pts) == [grid.square_of(p) for p in pts]

    def test_flat_index_roundtrip(self):
        grid = SquareGrid(width=9, height=7, side=1.0)
        for square in grid.iter_squares():
            assert grid.square_from_flat(grid.flat_index(square)) == square

    def test_flat_index_out_of_range(self):
        grid = SquareGrid(width=4, height=4, side=2.0)
        with pytest.raises(ValueError):
            grid.flat_index((5, 0))
        with pytest.raises(ValueError):
            grid.square_from_flat(99)

    def test_center(self):
        grid = SquareGrid(width=10, height=10, side=2.0)
        assert grid.center((1, 2)) == (3.0, 5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SquareGrid(width=10, height=10, side=0)
        with pytest.raises(ValueError):
            SquareGrid(width=0, height=10, side=1)


class TestNeighborRelation:
    def test_interior_has_eight_neighbors(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert len(grid.neighbors((5, 5))) == 8

    def test_corner_has_three_neighbors(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert len(grid.neighbors((0, 0))) == 3

    def test_include_self(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert (5, 5) in grid.neighbors((5, 5), include_self=True)
        assert (5, 5) not in grid.neighbors((5, 5))

    def test_are_neighbors_symmetric(self):
        grid = SquareGrid(width=10, height=10, side=1.0)
        assert grid.are_neighbors((2, 3), (3, 4))
        assert grid.are_neighbors((3, 4), (2, 3))
        assert not grid.are_neighbors((2, 3), (2, 3))
        assert not grid.are_neighbors((2, 3), (4, 3))

    @given(st.floats(min_value=1.0, max_value=10.0))
    def test_paper_square_side_keeps_neighbors_in_range_l2(self, radius):
        """The simulation square side R/3 keeps diagonal neighbors in L2 range."""
        grid = SquareGrid(width=30, height=30, side=radius / 3.0)
        assert grid.validate_for_radius(radius, norm="l2")

    @given(st.integers(min_value=1, max_value=10))
    def test_paper_square_side_keeps_neighbors_in_range_linf(self, radius):
        """The analytical square side ceil(R/2) keeps neighbors in L-inf range...

        ...only when ceil(R/2) <= R/2 holds exactly (even R); for odd R the
        paper's ceiling slightly exceeds R/2 and the guarantee needs R >= 2.
        This mirrors the paper's implicit assumption that R is large.
        """
        side = math.ceil(radius / 2)
        grid = SquareGrid(width=30, height=30, side=side)
        assert grid.max_intra_neighbor_distance("linf") == 2 * side
        if radius % 2 == 0:
            assert grid.validate_for_radius(radius, norm="linf")


class TestOccupancy:
    def test_occupancy_partitions_nodes(self):
        grid = SquareGrid(width=6, height=6, side=2.0)
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 6, size=(40, 2))
        occ = grid.occupancy(pos)
        all_ids = sorted(i for ids in occ.values() for i in ids)
        assert all_ids == list(range(40))

    def test_occupancy_membership_consistent(self):
        grid = SquareGrid(width=6, height=6, side=2.0)
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 6, size=(30, 2))
        occ = grid.occupancy(pos)
        for square, ids in occ.items():
            for i in ids:
                assert grid.square_of(pos[i]) == square
