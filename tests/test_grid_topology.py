"""Unit tests for the analytical grid topology (repro.topology.grid)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.grid import (
    GridBuckets,
    GridSpec,
    GridTopology,
    grid_index_of,
    grid_positions,
)


class TestGridSpec:
    def test_num_points(self):
        assert GridSpec(4, 3).num_points == 12

    def test_extent(self):
        assert GridSpec(5, 3, spacing=2.0).extent == (8.0, 4.0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridSpec(0, 3)
        with pytest.raises(ValueError):
            GridSpec(3, -1)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            GridSpec(3, 3, spacing=0.0)


class TestGridPositions:
    def test_row_major_order(self):
        pos = grid_positions(GridSpec(3, 2))
        assert pos.shape == (6, 2)
        assert pos[0].tolist() == [0.0, 0.0]
        assert pos[1].tolist() == [1.0, 0.0]
        assert pos[3].tolist() == [0.0, 1.0]

    def test_spacing_scales_coordinates(self):
        pos = grid_positions(GridSpec(2, 2, spacing=0.5))
        assert pos[3].tolist() == [0.5, 0.5]

    def test_grid_index_of_roundtrip(self):
        spec = GridSpec(4, 5)
        pos = grid_positions(spec)
        idx = grid_index_of(spec, 2, 3)
        assert pos[idx].tolist() == [2.0, 3.0]

    def test_grid_index_out_of_range(self):
        with pytest.raises(ValueError):
            grid_index_of(GridSpec(3, 3), 3, 0)


class TestGridTopology:
    def test_neighborhood_size_formula(self):
        topo = GridTopology(GridSpec(10, 10), radius=2)
        assert topo.neighborhood_size == (2 * 2 + 1) ** 2 - 1 == 24

    def test_koo_bound(self):
        # Koo: no algorithm tolerates t >= R(2R+1)/2.  For R=2 the bound is 5,
        # so the largest tolerable t is 4.
        topo = GridTopology(GridSpec(10, 10), radius=2)
        assert topo.max_tolerable_t == 4

    def test_koo_bound_r1(self):
        topo = GridTopology(GridSpec(5, 5), radius=1)
        # R(2R+1)/2 = 1.5, so t=1 is tolerable (t < 1.5).
        assert topo.max_tolerable_t == 1

    def test_neighborwatch_bound(self):
        # NeighborWatchRB tolerates t < ceil(R/2)^2.
        topo = GridTopology(GridSpec(10, 10), radius=4)
        assert topo.neighborwatch_tolerable_t == 3

    def test_neighborwatch_bound_is_weaker_than_koo(self):
        for radius in (1, 2, 3, 4, 6, 8):
            topo = GridTopology(GridSpec(20, 20), radius=radius)
            assert topo.neighborwatch_tolerable_t <= topo.max_tolerable_t

    def test_diameter_hops(self):
        topo = GridTopology(GridSpec(21, 11), radius=4)
        assert topo.diameter_hops == 5  # extent 20 / R 4

    def test_center_index(self):
        topo = GridTopology(GridSpec(5, 5), radius=1)
        center = topo.center_index()
        assert topo.positions[center].tolist() == [2.0, 2.0]

    def test_num_nodes(self):
        assert GridTopology(GridSpec(6, 7), radius=2).num_nodes == 42

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            GridTopology(GridSpec(5, 5), radius=0)

    def test_radius_in_cells_with_spacing(self):
        topo = GridTopology(GridSpec(5, 5, spacing=2.0), radius=4.0)
        assert topo.radius_in_cells == 2


class TestGridBuckets:
    """Grid-bucketed neighbor queries must equal the brute-force computation.

    The bucketed path over-collects candidates from surrounding cells and
    filters with the same elementwise distance expressions as the dense code,
    so the property is exact set equality — no tolerance.
    """

    @staticmethod
    def _brute_force(positions, center, threshold, norm):
        diff = positions - np.asarray(center, dtype=float)[None, :]
        if norm == "linf":
            dist = np.max(np.abs(diff), axis=-1)
        else:
            dist = np.sqrt(np.sum(diff**2, axis=-1))
        return np.flatnonzero(dist <= threshold)

    @settings(max_examples=120, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)), min_size=1, max_size=60
        ),
        cell=st.sampled_from([1.0, 1.5, 3.0, 7.0]),
        threshold=st.sampled_from([0.5, 1.0, 2.0, 4.0, 9.0]),
        norm=st.sampled_from(["l2", "linf"]),
        center=st.tuples(st.integers(0, 40), st.integers(0, 40)),
    )
    def test_query_matches_brute_force(self, points, cell, threshold, norm, center):
        # Half-integer coordinates produce exact-boundary distances, the
        # adversarial case for a threshold predicate.
        pos = np.asarray(points, dtype=float) / 2.0
        buckets = GridBuckets(pos, cell_size=cell)
        got = buckets.query(np.asarray(center, dtype=float) / 2.0, threshold, norm=norm)
        expected = self._brute_force(pos, np.asarray(center, dtype=float) / 2.0, threshold, norm)
        assert got.tolist() == expected.tolist()

    @settings(max_examples=80, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=2, max_size=50
        ),
        threshold=st.sampled_from([1.0, 2.5, 5.0]),
        norm=st.sampled_from(["l2", "linf"]),
        include_self=st.booleans(),
    )
    def test_neighbor_arrays_match_brute_force(self, points, threshold, norm, include_self):
        pos = np.asarray(points, dtype=float) / 2.0
        buckets = GridBuckets(pos, cell_size=threshold)
        indptr, indices = buckets.neighbor_arrays(threshold, norm, include_self=include_self)
        assert indptr[0] == 0 and indptr[-1] == indices.size
        for node in range(pos.shape[0]):
            row = indices[indptr[node] : indptr[node + 1]]
            expected = self._brute_force(pos, pos[node], threshold, norm)
            if not include_self:
                expected = expected[expected != node]
            assert row.tolist() == expected.tolist(), f"node {node}"

    @pytest.mark.parametrize("norm", ["l2", "linf"])
    def test_large_deployment_matches_brute_force(self, norm):
        """Fixed-seed large-N spot check (the property tests stay small)."""
        rng = np.random.default_rng(123)
        pos = rng.uniform(0.0, 50.0, size=(3000, 2))
        threshold = 2.0
        buckets = GridBuckets(pos, cell_size=threshold)
        indptr, indices = buckets.neighbor_arrays(threshold, norm, include_self=True)
        diff = pos[:, None, :] - pos[None, :, :]
        if norm == "linf":
            dist = np.max(np.abs(diff), axis=-1)
        else:
            dist = np.sqrt(np.sum(diff**2, axis=-1))
        dense = dist <= threshold
        src = np.repeat(np.arange(3000), np.diff(indptr))
        assert np.array_equal(
            np.flatnonzero(dense.ravel()), src * 3000 + indices
        )

    def test_cell_size_must_be_positive(self):
        with pytest.raises(ValueError):
            GridBuckets(np.zeros((3, 2)), cell_size=0.0)

    def test_unknown_norm_rejected(self):
        buckets = GridBuckets(np.zeros((3, 2)), cell_size=1.0)
        with pytest.raises(ValueError):
            buckets.query((0.0, 0.0), 1.0, norm="l1")
