"""Tests for the analysis layer: theory bounds, statistics, metrics and tables."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    aggregate,
    broadcasts_per_delivered_bit,
    delivery_latencies,
    discard_outliers,
    expected_neighborhood_size,
    format_mapping,
    format_table,
    koo_tolerance_bound,
    latency_percentiles,
    max_tolerable_multipath,
    max_tolerable_neighborwatch,
    max_tolerable_neighborwatch_2vote,
    max_tolerated_fraction,
    minimum_runtime_rounds,
    multipath_lying_fraction,
    pipeline_speedup,
    runtime_bound_rounds,
    slowdown_factor,
    summarize_runs,
    to_csv,
    write_csv,
)
from repro.sim.results import NodeOutcome, RunResult


class TestTheoryBounds:
    def test_koo_bound_r4(self):
        # R=4: R(2R+1)/2 = 18.
        assert koo_tolerance_bound(4) == pytest.approx(18.0)
        assert max_tolerable_multipath(4) == 17

    def test_neighborwatch_bound_r4(self):
        assert max_tolerable_neighborwatch(4) == 3

    def test_two_vote_bound_r4(self):
        assert max_tolerable_neighborwatch_2vote(4) == 7

    def test_bound_ordering(self):
        """NW <= 2-vote <= MultiPath for every radius (the paper's hierarchy)."""
        for radius in (1, 2, 3, 4, 5, 8, 10):
            nw = max_tolerable_neighborwatch(radius)
            nw2 = max_tolerable_neighborwatch_2vote(radius)
            mp = max_tolerable_multipath(radius)
            assert nw <= nw2 <= mp

    def test_expected_neighborhood_matches_paper_quote(self):
        """600 nodes on 20x20 with R=4: the paper quotes ~80 neighbors."""
        size = expected_neighborhood_size(600 / 400, 4, norm="linf")
        assert size == pytest.approx(96, rel=0.25)

    def test_multipath_lying_fraction_matches_paper(self):
        """Paper: t=3 => ~2.5%, t=5 => ~5% at density 1.5, R=4 (3/80 and 5/80)."""
        density = 600 / 400
        assert multipath_lying_fraction(3, density, 4) == pytest.approx(0.031, abs=0.01)
        assert multipath_lying_fraction(5, density, 4) == pytest.approx(0.052, abs=0.015)

    def test_runtime_bound_monotonic(self):
        assert minimum_runtime_rounds(2, 10, 4) == 24
        assert runtime_bound_rounds(2, 10, 4) > runtime_bound_rounds(1, 10, 4)
        assert runtime_bound_rounds(2, 10, 4, slots_per_cycle=100) > runtime_bound_rounds(2, 10, 4)

    def test_pipeline_speedup_grows_with_message(self):
        assert pipeline_speedup(4, 20, 16) > pipeline_speedup(4, 20, 2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            koo_tolerance_bound(0)
        with pytest.raises(ValueError):
            expected_neighborhood_size(0, 4)
        with pytest.raises(ValueError):
            minimum_runtime_rounds(-1, 2, 2)
        with pytest.raises(ValueError):
            multipath_lying_fraction(-1, 1.0, 4)


class TestStats:
    def test_discard_outliers(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5, 1000.0]
        kept = discard_outliers(values, z_threshold=2.0)
        assert 1000.0 not in kept
        assert len(kept) == 5

    def test_discard_outliers_small_samples_untouched(self):
        assert discard_outliers([1.0, 100.0]) == [1.0, 100.0]

    def test_discard_outliers_constant(self):
        assert discard_outliers([5.0] * 10) == [5.0] * 10

    def test_aggregate_basic(self):
        agg = aggregate([1.0, 2.0, 3.0], drop_outliers=False)
        assert agg.mean == pytest.approx(2.0)
        assert agg.count == 3
        assert agg.minimum == 1.0 and agg.maximum == 3.0
        assert agg.ci_low <= agg.mean <= agg.ci_high

    def test_aggregate_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0
        assert agg.ci_low == agg.ci_high == 5.0

    def test_aggregate_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_aggregate_as_dict(self):
        assert set(aggregate([1.0, 2.0]).as_dict()) == {
            "mean", "std", "count", "min", "max", "ci_low", "ci_high"
        }

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30))
    def test_aggregate_mean_within_range(self, values):
        agg = aggregate(values, drop_outliers=False)
        assert agg.minimum - 1e-6 <= agg.mean <= agg.maximum + 1e-6

    def test_aggregate_rejects_nan_instead_of_propagating(self):
        """A NaN sample must fail loudly, not poison the mean downstream."""
        with pytest.raises(ValueError, match="non-finite"):
            aggregate([1.0, float("nan"), 3.0])
        with pytest.raises(ValueError, match="non-finite"):
            aggregate([float("inf")])

    def test_aggregate_constant_values_zero_width_interval(self):
        agg = aggregate([7.5] * 10)
        assert agg.mean == 7.5
        assert agg.std == 0.0
        assert agg.count == 10  # nothing mistaken for an outlier
        assert agg.ci_low == agg.ci_high == 7.5

    def test_aggregate_extreme_outlier_never_empties_the_sample(self):
        """Even with one sample vastly off, aggregation keeps a usable core."""
        values = [10.0, 11.0, 9.0, 10.5, 9.5] * 3 + [1e12]
        agg = aggregate(values)
        assert agg.count == len(values) - 1  # the outlier went, the core stayed
        assert agg.mean == pytest.approx(10.0, abs=1.0)
        assert math.isfinite(agg.mean)

    def test_discard_outliers_never_returns_empty(self):
        for values in ([1.0], [1.0, 2.0, 3.0, 4.0], [0.0, 0.0, 0.0, 1e9]):
            assert discard_outliers(values)

    def test_discard_outliers_invalid_threshold(self):
        with pytest.raises(ValueError):
            discard_outliers([1.0, 2.0, 3.0, 4.0], z_threshold=0.0)


def _result(rounds=10, delivered=True, correct=True):
    outcome = NodeOutcome(0, True, True, delivered, correct if delivered else None,
                          rounds if delivered else None, broadcasts=4)
    return RunResult(message=(1, 0), total_rounds=rounds, terminated=True, outcomes={0: outcome})


class TestSummarizeRuns:
    def test_summary_aggregates_each_metric(self):
        runs = [_result(rounds=10), _result(rounds=20), _result(rounds=30)]
        summary = summarize_runs(runs)
        assert summary["rounds"].mean == pytest.approx(20.0)
        assert summary["completion_fraction"].mean == 1.0

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])


class TestMetrics:
    def make_result(self):
        outcomes = {
            0: NodeOutcome(0, True, True, True, True, 10, 6),
            1: NodeOutcome(1, True, True, True, True, 30, 4),
            2: NodeOutcome(2, True, True, False, None, None, 2),
            3: NodeOutcome(3, False, True, False, None, None, 9),
        }
        return RunResult(message=(1, 0), total_rounds=50, terminated=False, outcomes=outcomes)

    def test_delivery_latencies(self):
        assert delivery_latencies(self.make_result()) == [10, 30]

    def test_latency_percentiles(self):
        pct = latency_percentiles(self.make_result(), (50, 100))
        assert pct[100] == 30.0
        assert 10.0 <= pct[50] <= 30.0

    def test_latency_percentiles_no_deliveries(self):
        empty = RunResult(message=(1,), total_rounds=77, terminated=False, outcomes={})
        assert latency_percentiles(empty, (50,)) == {50: 77.0}

    def test_broadcasts_per_delivered_bit(self):
        result = self.make_result()
        # honest broadcasts = 12, delivered devices = 2, bits = 2 * 2 = 4
        assert broadcasts_per_delivered_bit(result) == pytest.approx(3.0)

    def test_slowdown_factor(self):
        fast = _result(rounds=10)
        slow = _result(rounds=77)
        assert slowdown_factor(slow, fast) == pytest.approx(7.7)

    def test_max_tolerated_fraction(self):
        curve = {0.0: 1.0, 0.05: 0.95, 0.10: 0.92, 0.15: 0.5, 0.25: 0.2}
        best = max_tolerated_fraction(lambda f: curve[f], sorted(curve), threshold=0.9)
        assert best == 0.10

    def test_max_tolerated_fraction_none_pass(self):
        assert max_tolerated_fraction(lambda f: 0.1, [0.05, 0.1], threshold=0.9) == 0.0

    def test_max_tolerated_fraction_empty(self):
        with pytest.raises(ValueError):
            max_tolerated_fraction(lambda f: 1.0, [])


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22.5, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_format_mapping(self):
        text = format_mapping({"alpha": 1.5, "beta": True}, title="m")
        assert "alpha" in text and "yes" in text

    def test_to_csv(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        csv_text = to_csv(rows)
        assert csv_text.splitlines()[0] == "a,b"
        assert len(csv_text.splitlines()) == 3

    def test_to_csv_empty(self):
        assert to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [{"x": 1}])
        assert path.read_text().startswith("x")
