"""Unit tests for scenario configuration and the simulation builder."""

from __future__ import annotations

import pytest

from repro.core.neighborwatch import NeighborWatchNode
from repro.core.multipath import MultiPathNode
from repro.core.epidemic import EpidemicNode
from repro.core.schedule import NodeSchedule, SquareSchedule
from repro.sim.builder import build_schedule, build_simulation, run_scenario
from repro.registry import RegistryError
from repro.sim.config import (
    FaultPlan,
    ScenarioConfig,
    canonical_channel,
    canonical_protocol,
    default_message,
)
from repro.sim.radio import FriisChannel, UnitDiskChannel
from repro.topology.deployment import uniform_deployment


class TestCanonicalProtocol:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("neighborwatch", "neighborwatch"),
            ("NeighborWatchRB", "neighborwatch"),
            ("nw", "neighborwatch"),
            ("nw2", "neighborwatch2"),
            ("2-vote", "neighborwatch2"),
            ("MultiPathRB", "multipath"),
            ("mp", "multipath"),
            ("flooding", "epidemic"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert canonical_protocol(alias) == expected

    def test_unknown_is_value_and_key_error_listing_candidates(self):
        with pytest.raises(ValueError, match="neighborwatch"):
            canonical_protocol("quantum")
        with pytest.raises(KeyError):
            canonical_protocol("quantum")
        with pytest.raises(RegistryError, match="available"):
            canonical_protocol("quantum")

    def test_canonical_passthrough(self):
        assert canonical_protocol("epidemic") == "epidemic"
        assert canonical_channel("friis") == "friis"


class TestDefaultMessage:
    def test_pattern(self):
        assert default_message(5) == (1, 0, 1, 0, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_message(0)


class TestScenarioConfig:
    def test_defaults(self):
        cfg = ScenarioConfig()
        assert cfg.protocol == "neighborwatch"
        assert cfg.message_bits == (1, 0, 1, 0)
        assert cfg.separation == pytest.approx(12.0)
        assert cfg.epidemic_slot_separation == pytest.approx(12.0)

    def test_explicit_message_must_match_length(self):
        with pytest.raises(ValueError):
            ScenarioConfig(message_length=3, message=(1, 0))

    def test_square_side_default_l2(self):
        cfg = ScenarioConfig(radius=3.0)
        assert cfg.effective_square_side() == pytest.approx(1.0)

    def test_square_side_default_linf(self):
        cfg = ScenarioConfig(radius=4.0, norm="linf")
        assert cfg.effective_square_side() == pytest.approx(2.0)

    def test_square_side_override(self):
        cfg = ScenarioConfig(radius=4.0, square_side=1.5)
        assert cfg.effective_square_side() == 1.5

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ScenarioConfig(radius=0)
        with pytest.raises(ValueError):
            ScenarioConfig(message_length=0)
        with pytest.raises(ValueError):
            ScenarioConfig(norm="l1")
        with pytest.raises(ValueError):
            ScenarioConfig(multipath_tolerance=-1)

    def test_with_protocol_copy(self):
        cfg = ScenarioConfig(radius=3.0, seed=9)
        other = cfg.with_protocol("epidemic")
        assert other.protocol == "epidemic"
        assert other.radius == 3.0 and other.seed == 9
        assert cfg.protocol == "neighborwatch"

    def test_derive_max_rounds_respects_override(self):
        cfg = ScenarioConfig(max_rounds=123)
        assert cfg.derive_max_rounds(20.0, 600) == 123

    def test_derive_max_rounds_grows_with_budget(self):
        cfg = ScenarioConfig()
        base = cfg.derive_max_rounds(20.0, 600, adversary_budget=0)
        jammed = cfg.derive_max_rounds(20.0, 600, adversary_budget=100)
        assert jammed > base

    def test_derive_max_rounds_bits_per_hop(self):
        cfg = ScenarioConfig(protocol="multipath")
        base = cfg.derive_max_rounds(20.0, 600, bits_per_hop=1)
        scaled = cfg.derive_max_rounds(20.0, 600, bits_per_hop=10)
        assert scaled > base


class TestFaultPlan:
    def test_normalisation(self):
        plan = FaultPlan(crashed=(3, 1, 1), jammers=(5,), liars=(7,))
        assert plan.crashed == (1, 3)
        assert plan.faulty == (1, 3, 5, 7)
        assert plan.byzantine == (5, 7)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crashed=(1,), jammers=(1,))

    def test_budget_total(self):
        assert FaultPlan(jammers=(1, 2), jammer_budget=10).total_jam_budget() == 20
        assert FaultPlan(jammers=(1, 2)).total_jam_budget() == 0

    def test_validate_for_source(self):
        plan = FaultPlan(liars=(0,))
        with pytest.raises(ValueError):
            plan.validate_for(10, source_index=0)

    def test_validate_for_range(self):
        plan = FaultPlan(crashed=(99,))
        with pytest.raises(ValueError):
            plan.validate_for(10, source_index=0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(jam_probability=2.0)


class TestBuilder:
    @pytest.fixture
    def deployment(self):
        return uniform_deployment(60, 8, 8, rng=4)

    def test_build_schedule_kinds(self, deployment):
        assert isinstance(
            build_schedule(deployment, ScenarioConfig(protocol="neighborwatch", radius=3)),
            SquareSchedule,
        )
        assert isinstance(
            build_schedule(deployment, ScenarioConfig(protocol="multipath", radius=3)),
            NodeSchedule,
        )
        epidemic_sched = build_schedule(deployment, ScenarioConfig(protocol="epidemic", radius=3))
        assert isinstance(epidemic_sched, NodeSchedule)
        assert epidemic_sched.phases_per_slot == 1

    def test_build_simulation_protocol_types(self, deployment):
        cfg = ScenarioConfig(protocol="neighborwatch", radius=3, message_length=2)
        sim = build_simulation(deployment, cfg)
        honest_protos = [n.protocol for n in sim.nodes if n.protocol is not None]
        assert all(isinstance(p, NeighborWatchNode) for p in honest_protos)

        cfg = ScenarioConfig(protocol="multipath", radius=3, message_length=2)
        sim = build_simulation(deployment, cfg)
        assert all(isinstance(n.protocol, MultiPathNode) for n in sim.nodes)

        cfg = ScenarioConfig(protocol="epidemic", radius=3, message_length=2)
        sim = build_simulation(deployment, cfg)
        assert all(isinstance(n.protocol, EpidemicNode) for n in sim.nodes)

    def test_build_simulation_channels(self, deployment):
        cfg = ScenarioConfig(radius=3, channel="friis")
        sim = build_simulation(deployment, cfg)
        assert isinstance(sim.channel, FriisChannel)
        cfg = ScenarioConfig(radius=3, channel="unit-disk")
        sim = build_simulation(deployment, cfg)
        assert isinstance(sim.channel, UnitDiskChannel)

    def test_faults_applied(self, deployment):
        src = deployment.source_index
        ids = [i for i in range(deployment.num_nodes) if i != src]
        plan = FaultPlan(crashed=(ids[0],), jammers=(ids[1],), liars=(ids[2],), jammer_budget=5)
        cfg = ScenarioConfig(protocol="neighborwatch", radius=3, message_length=2)
        sim = build_simulation(deployment, cfg, plan)
        assert sim.nodes[ids[0]].protocol is None
        assert not sim.nodes[ids[1]].honest
        assert not sim.nodes[ids[2]].honest
        assert isinstance(sim.nodes[ids[2]].protocol, NeighborWatchNode)

    def test_faulty_source_rejected(self, deployment):
        plan = FaultPlan(liars=(deployment.source_index,))
        with pytest.raises(ValueError):
            build_simulation(deployment, ScenarioConfig(radius=3), plan)

    def test_run_scenario_metadata(self, deployment):
        cfg = ScenarioConfig(protocol="epidemic", radius=3, message_length=2, seed=5)
        result = run_scenario(deployment, cfg)
        assert result.metadata["protocol"] == "epidemic"
        assert result.metadata["num_nodes"] == deployment.num_nodes
        assert result.metadata["seed"] == 5
        assert result.terminated

    def test_run_scenario_reproducible(self, deployment):
        cfg = ScenarioConfig(protocol="neighborwatch", radius=3, message_length=2, seed=5)
        a = run_scenario(deployment, cfg)
        b = run_scenario(deployment, cfg)
        assert a.summary() == b.summary()
