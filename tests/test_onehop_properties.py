"""Property-based tests of Theorem 2 (the 1Hop-Protocol) using hypothesis.

The adversary chooses an arbitrary interference schedule (which phases of
which slots it pollutes, per receiver and for the sender).  Theorem 2 must
hold for every such schedule:

* Authenticity  — every receiver's accepted prefix is a prefix of the sent message;
* Termination   — once the sender has completed, every receiver has the message;
* Energy        — extra slots beyond one per bit only happen in slots the
                  adversary interfered with.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.onehop import OneHopReceiver, OneHopSender
from repro.core.twobit import NUM_PHASES

message_strategy = st.lists(st.integers(0, 1), min_size=1, max_size=6)
# Per-slot interference: for each slot, a set of (device_index, phase) pairs.
slot_noise = st.sets(
    st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=NUM_PHASES - 1)),
    max_size=4,
)
schedule_strategy = st.lists(slot_noise, min_size=0, max_size=24)


def run_stream(message, noise_schedule, num_receivers=3):
    """Run slots until the sender completes or the noise schedule runs out (plus slack)."""
    sender = OneHopSender(message)
    receivers = [OneHopReceiver(expected_length=len(message)) for _ in range(num_receivers)]
    total_slots = len(noise_schedule) + len(message) + 2
    interfered_slots = 0
    for slot_index in range(total_slots):
        noise = noise_schedule[slot_index] if slot_index < len(noise_schedule) else set()
        if noise:
            interfered_slots += 1
        sender_active = sender.begin_slot()
        actives = [r.begin_slot() for r in receivers]
        participants = [("s", sender, sender_active, 0)] + [
            (f"r{i}", r, a, i + 1) for i, (r, a) in enumerate(zip(receivers, actives))
        ]
        for phase in range(NUM_PHASES):
            transmitted = set()
            for name, device, active, _dev in participants:
                if active and device.action(phase):
                    transmitted.add(name)
            for name, device, active, dev in participants:
                if not active or name in transmitted:
                    continue
                busy = ((dev, phase) in noise) or any(t != name for t in transmitted)
                device.observe(phase, busy)
        sender.finish_slot()
        for r in receivers:
            r.finish_slot()
        if sender.sent_count == len(message):
            break
    return sender, receivers, interfered_slots


class TestTheoremTwoProperties:
    @settings(max_examples=200, deadline=None)
    @given(message_strategy, schedule_strategy)
    def test_authenticity_prefix(self, message, noise_schedule):
        message = tuple(message)
        _sender, receivers, _ = run_stream(message, noise_schedule)
        for r in receivers:
            got = r.received_bits
            assert got == message[: len(got)]

    @settings(max_examples=200, deadline=None)
    @given(message_strategy, schedule_strategy)
    def test_termination(self, message, noise_schedule):
        """When the sender completes, every receiver holds the full message."""
        message = tuple(message)
        sender, receivers, _ = run_stream(message, noise_schedule)
        if sender.sent_count == len(message):
            for r in receivers:
                assert r.received_bits == message

    @settings(max_examples=200, deadline=None)
    @given(message_strategy)
    def test_energy_clean_run_is_one_slot_per_bit(self, message):
        """Without interference the message takes exactly one slot per bit."""
        message = tuple(message)
        sender, receivers, _ = run_stream(message, [])
        assert sender.attempts == len(message)
        assert sender.sent_count == len(message)
        for r in receivers:
            assert r.received_bits == message

    @settings(max_examples=200, deadline=None)
    @given(message_strategy, schedule_strategy)
    def test_energy_extra_slots_bounded_by_interference(self, message, noise_schedule):
        """Every slot beyond the k successful ones coincides with adversarial energy.

        This is the discrete analogue of Theorem 2's energy claim: the sender
        needed (attempts - sent) failed slots and each of them required at
        least one Byzantine broadcast somewhere in the neighborhood.
        """
        message = tuple(message)
        sender, _receivers, interfered_slots = run_stream(message, noise_schedule)
        failed_attempts = sender.attempts - sender.sent_count
        assert failed_attempts <= interfered_slots

    @settings(max_examples=100, deadline=None)
    @given(message_strategy, schedule_strategy, st.integers(min_value=1, max_value=4))
    def test_receivers_never_diverge_from_each_other_beyond_prefix(
        self, message, noise_schedule, num_receivers
    ):
        """All receivers hold prefixes of the same (true) message, hence of each other."""
        message = tuple(message)
        _sender, receivers, _ = run_stream(message, noise_schedule, num_receivers=num_receivers)
        prefixes = sorted((r.received_bits for r in receivers), key=len)
        for shorter, longer in zip(prefixes, prefixes[1:]):
            assert longer[: len(shorter)] == shorter
