"""Integration tests for MultiPathRB (Theorem 4 behaviour)."""

from __future__ import annotations

import pytest

from repro.adversary.placement import random_fault_selection
from repro.core.multipath import MultiPathConfig, MultiPathNode
from repro.sim.builder import build_simulation, run_scenario
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.topology.deployment import grid_jittered_deployment, uniform_deployment


@pytest.fixture(scope="module")
def small_grid():
    """A 6x6-unit grid (49 nodes): small enough for MultiPathRB to finish fast."""
    return grid_jittered_deployment(6, 6, spacing=1.0)


@pytest.fixture(scope="module")
def dense_small():
    return uniform_deployment(90, 6, 6, rng=13)


def mp_config(**kwargs) -> ScenarioConfig:
    defaults = dict(protocol="multipath", radius=3.0, message_length=2, multipath_tolerance=1, seed=3)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestFaultFreeDelivery:
    def test_full_delivery_on_grid(self, small_grid):
        result = run_scenario(small_grid, mp_config())
        assert result.terminated
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_full_delivery_random_deployment(self, dense_small):
        result = run_scenario(dense_small, mp_config(seed=5))
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_higher_tolerance_still_delivers_when_dense(self, dense_small):
        result = run_scenario(dense_small, mp_config(multipath_tolerance=2, seed=5))
        assert result.completion_fraction > 0.9
        assert result.correctness_fraction == 1.0

    def test_multipath_much_slower_than_neighborwatch(self, small_grid):
        mp = run_scenario(small_grid, mp_config())
        nw = run_scenario(small_grid, mp_config().with_protocol("neighborwatch"))
        assert mp.completion_rounds > 3 * nw.completion_rounds


class TestLyingResilience:
    def test_scattered_liars_below_threshold_cannot_corrupt(self, dense_small):
        """With fewer than t liars per neighborhood, authenticity holds."""
        liars = random_fault_selection(dense_small.num_nodes, 2, exclude=[dense_small.source_index], rng=4)
        result = run_scenario(
            dense_small, mp_config(multipath_tolerance=2, seed=5), FaultPlan(liars=tuple(liars))
        )
        assert result.correctness_fraction == 1.0

    def test_tolerance_zero_is_fragile_against_liars(self, dense_small):
        """With t = 0 a single liar can poison its neighbors (sanity check that
        the tolerance parameter is actually what provides the protection)."""
        liars = random_fault_selection(dense_small.num_nodes, 4, exclude=[dense_small.source_index], rng=4)
        result = run_scenario(
            dense_small, mp_config(multipath_tolerance=0, seed=5), FaultPlan(liars=tuple(liars))
        )
        assert result.correctness_fraction < 1.0


class TestJammingResilience:
    def test_jamming_delays_but_does_not_corrupt(self, small_grid):
        jammers = random_fault_selection(small_grid.num_nodes, 4, exclude=[small_grid.source_index], rng=6)
        clean = run_scenario(small_grid, mp_config())
        jammed = run_scenario(
            small_grid,
            mp_config(),
            FaultPlan(jammers=tuple(jammers), jammer_budget=10, jam_probability=0.2),
        )
        assert jammed.correctness_fraction == 1.0
        # The jammed run has four fewer honest devices (the jammers), so its
        # last honest delivery may land slightly earlier; allow one schedule
        # cycle of slack around the "jamming never speeds things up" shape.
        cycle = jammed.metadata["rounds_per_cycle"]
        assert jammed.completion_rounds >= clean.completion_rounds - cycle


class TestProtocolObjectBehaviour:
    def test_requires_node_schedule(self):
        import numpy as np

        from repro.core.protocol import NodeContext
        from repro.core.regions import SquareGrid
        from repro.core.schedule import SquareSchedule

        node = MultiPathNode()
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        sched = SquareSchedule(SquareGrid(2, 2, 1.0), 2.0, positions, 0)
        with pytest.raises(TypeError):
            node.setup(
                NodeContext(node_id=1, position=(1.0, 0.0), radius=2.0, schedule=sched, message_length=2)
            )

    def test_source_committed_from_start(self, small_grid):
        cfg = mp_config()
        sim = build_simulation(small_grid, cfg)
        source = sim.nodes[small_grid.source_index].protocol
        assert source.delivered
        assert source.delivered_message == cfg.message_bits

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MultiPathConfig(tolerance=-1)

    def test_committed_bits_match_message(self, small_grid):
        cfg = mp_config()
        sim = build_simulation(small_grid, cfg)
        sim.run(max_rounds=200_000)
        message = cfg.message_bits
        for node in sim.nodes:
            proto = node.protocol
            if isinstance(proto, MultiPathNode) and node.honest:
                for index, value in proto.committed.items():
                    assert value == message[index - 1]

    def test_neighbors_of_source_commit_directly(self, small_grid):
        cfg = mp_config()
        sim = build_simulation(small_grid, cfg)
        # Run just long enough for the source's first SOURCE control frame to
        # stream out (one bit per cycle), but far too short for the COMMIT /
        # HEARD voting chain to have reached anyone beyond the source's range.
        from repro.core.messages import ControlCodec

        frame_bits = ControlCodec(cfg.message_length, sim.schedule.num_slots).frame_bits
        sim.run_slots(sim.schedule.num_slots * (frame_bits + 3))
        src_pos = small_grid.positions[small_grid.source_index]
        committed_nodes = [
            n.node_id
            for n in sim.nodes
            if isinstance(n.protocol, MultiPathNode)
            and n.node_id != small_grid.source_index
            and n.protocol.committed
        ]
        assert committed_nodes, "some source neighbors should have committed bits already"
        for node_id in committed_nodes:
            dx = abs(small_grid.positions[node_id][0] - src_pos[0])
            dy = abs(small_grid.positions[node_id][1] - src_pos[1])
            assert max(dx, dy) <= 2 * cfg.radius
