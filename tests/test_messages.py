"""Unit tests for wire frames, bit codecs and MultiPathRB control messages."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import (
    ControlCodec,
    ControlMessage,
    ControlType,
    Frame,
    FrameKind,
    bits_from_bytes,
    bits_from_int,
    bytes_from_bits,
    int_from_bits,
    validate_bits,
)


class TestBitHelpers:
    def test_validate_bits_normalises(self):
        assert validate_bits([True, 0, 1]) == (1, 0, 1)

    def test_validate_bits_rejects(self):
        with pytest.raises(ValueError):
            validate_bits([0, 2])

    def test_bits_from_int(self):
        assert bits_from_int(5, 4) == (0, 1, 0, 1)
        assert bits_from_int(0, 3) == (0, 0, 0)

    def test_bits_from_int_overflow(self):
        with pytest.raises(ValueError):
            bits_from_int(8, 3)

    def test_bits_from_int_negative(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 3)

    def test_int_from_bits(self):
        assert int_from_bits((1, 0, 1, 1)) == 11

    def test_int_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            int_from_bits((1, 3))

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_int_roundtrip(self, value):
        assert int_from_bits(bits_from_int(value, 16)) == value

    def test_bytes_roundtrip(self):
        data = b"\x00\xffAB"
        assert bytes_from_bits(bits_from_bytes(data)) == data

    def test_bytes_from_bits_requires_multiple_of_8(self):
        with pytest.raises(ValueError):
            bytes_from_bits((1, 0, 1))

    @given(st.binary(max_size=32))
    def test_bytes_roundtrip_property(self, data):
        assert bytes_from_bits(bits_from_bytes(data)) == data


class TestFrame:
    def test_frame_fields(self):
        frame = Frame(FrameKind.DATA_BIT, 3, (1,))
        assert frame.kind is FrameKind.DATA_BIT
        assert frame.sender == 3
        assert frame.payload == (1,)

    def test_frame_is_hashable(self):
        assert len({Frame(FrameKind.ACK, 1), Frame(FrameKind.ACK, 1)}) == 1


class TestControlMessage:
    def test_valid_commit(self):
        msg = ControlMessage(ControlType.COMMIT, 2, 1)
        assert msg.cause == 0

    def test_heard_carries_cause(self):
        msg = ControlMessage(ControlType.HEARD, 1, 0, cause=7)
        assert msg.cause == 7

    def test_commit_cannot_carry_cause(self):
        with pytest.raises(ValueError):
            ControlMessage(ControlType.COMMIT, 1, 0, cause=2)

    def test_bit_index_is_one_based(self):
        with pytest.raises(ValueError):
            ControlMessage(ControlType.COMMIT, 0, 0)

    def test_bit_value_validated(self):
        with pytest.raises(ValueError):
            ControlMessage(ControlType.COMMIT, 1, 2)


class TestControlCodec:
    def test_frame_bits_width(self):
        codec = ControlCodec(message_length=4, num_slots=100)
        # 2 (type) + 2 (index) + 1 (value) + 7 (cause) = 12
        assert codec.frame_bits == 12

    def test_roundtrip_all_types(self):
        codec = ControlCodec(message_length=5, num_slots=64)
        messages = [
            ControlMessage(ControlType.SOURCE, 1, 1),
            ControlMessage(ControlType.COMMIT, 5, 0),
            ControlMessage(ControlType.HEARD, 3, 1, cause=63),
        ]
        for msg in messages:
            assert codec.decode(codec.encode(msg)) == msg

    def test_encode_rejects_out_of_range_index(self):
        codec = ControlCodec(message_length=2, num_slots=8)
        with pytest.raises(ValueError):
            codec.encode(ControlMessage(ControlType.COMMIT, 3, 0))

    def test_encode_rejects_out_of_range_cause(self):
        codec = ControlCodec(message_length=2, num_slots=8)
        with pytest.raises(ValueError):
            codec.encode(ControlMessage(ControlType.HEARD, 1, 0, cause=8))

    def test_decode_wrong_length_returns_none(self):
        codec = ControlCodec(message_length=2, num_slots=8)
        assert codec.decode((0, 1, 0)) is None

    def test_decode_invalid_type_returns_none(self):
        codec = ControlCodec(message_length=2, num_slots=8)
        bits = list(codec.encode(ControlMessage(ControlType.COMMIT, 1, 1)))
        bits[0], bits[1] = 1, 1  # type value 3 does not exist
        assert codec.decode(tuple(bits)) is None

    def test_decode_out_of_range_index_returns_none(self):
        codec = ControlCodec(message_length=3, num_slots=8)
        bits = list(codec.encode(ControlMessage(ControlType.COMMIT, 3, 1)))
        # index field is bits [2:4); force it to 3 (=> bit_index 4 > 3)
        bits[2], bits[3] = 1, 1
        assert codec.decode(tuple(bits)) is None

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ControlCodec(message_length=0, num_slots=4)
        with pytest.raises(ValueError):
            ControlCodec(message_length=4, num_slots=0)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=200),
        st.data(),
    )
    def test_roundtrip_property(self, message_length, num_slots, data):
        codec = ControlCodec(message_length=message_length, num_slots=num_slots)
        mtype = data.draw(st.sampled_from(list(ControlType)))
        index = data.draw(st.integers(min_value=1, max_value=message_length))
        value = data.draw(st.integers(min_value=0, max_value=1))
        cause = data.draw(st.integers(min_value=0, max_value=num_slots - 1)) if mtype is ControlType.HEARD else 0
        msg = ControlMessage(mtype, index, value, cause=cause)
        assert codec.decode(codec.encode(msg)) == msg

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=12, max_size=12))
    def test_decode_never_crashes(self, bits):
        codec = ControlCodec(message_length=4, num_slots=100)
        result = codec.decode(tuple(bits))
        assert result is None or isinstance(result, ControlMessage)
