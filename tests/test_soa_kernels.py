"""Struct-of-arrays slot kernels: eligibility, counters and oracle fidelity.

PR 7 added a third execution tier (:mod:`repro.sim.soa`): broadcast slots of
the busy-driven protocols lower to packed-bitmask kernels that run whole slot
groups in mask algebra, bypassing the per-device phase machines.  PR 9
extended the tier to loss configurations (batched listener-ordered draws),
Friis power-sum busy groups, and traced runs (events synthesized from the
packed masks); only unit-disk capture stays on the scalar/cohort tiers, its
draws being data-dependent.  These tests pin

* the control surface — the ``use_soa_kernels`` knob, the
  ``REPRO_SOA_KERNELS`` env default and the per-capability eligibility gate
  (:meth:`~repro.sim.radio.Channel.soa_round_support`), with
  ``plan_cache_info()["soa_kernels"]`` counters including the busy-cache
  eviction count and thrash warning;
* the hard contract — exported records *and* the channel RNG stream position
  are bit-identical across the SoA, cohort and scalar tiers for every
  compiled capability (deterministic, lossy, Friis, Friis+loss), including
  runs where jammers force per-slot scalar fallbacks, and traced SoA runs
  produce byte-identical event streams to the scalar loop; and
* the region-keyed MultiPath cohort contract that rode along: devices whose
  :func:`~repro.core.regions.region_profile_of` profiles (and states) are
  equal share one machine, split exactly when their busy streams diverge, and
  never group when the profiles differ.  Under the paper's standard ``3R``
  slot separation such cohorts cannot exist (two same-slot devices are more
  than ``3R`` apart, hence have disjoint R-balls), so the geometries below
  deliberately shrink ``schedule_separation``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.builder import build_simulation
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.sim.engine import clear_link_cache, default_soa_kernels
from repro.sim.events import EventLog
from repro.topology.deployment import Deployment, uniform_deployment

MAX_ROUNDS = 2500

#: (knob kwargs, human name) for the three execution tiers.
TIERS = (
    ("soa", {"use_soa_kernels": True}),
    ("cohort", {"use_soa_kernels": False, "use_cohort_runtime": True}),
    ("scalar", {"use_soa_kernels": False, "use_cohort_runtime": False}),
)


def _run_tiers(deployment, config, faults=None, max_rounds=MAX_ROUNDS):
    """Run one scenario per tier; returns {tier: (record, rng_tail, info)}."""
    out = {}
    for tier, kwargs in TIERS:
        clear_link_cache()
        sim = build_simulation(deployment, config, faults, **kwargs)
        result = sim.run(max_rounds)
        # The post-run generator draw pins the RNG stream position: if any
        # tier consumed the channel generator differently, the tails differ.
        out[tier] = (result.to_record(), sim.rng.random(), sim.plan_cache_info())
    return out


def _assert_tiers_identical(runs):
    soa_record, soa_tail, _ = runs["soa"]
    for tier in ("cohort", "scalar"):
        record, tail, _ = runs[tier]
        assert record == soa_record, f"soa record differs from {tier}"
        assert tail == soa_tail, f"soa RNG position differs from {tier}"


class TestDefaultKnob:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOA_KERNELS", raising=False)
        assert default_soa_kernels()

    def test_env_forces_off(self, monkeypatch):
        for value in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_SOA_KERNELS", value)
            assert not default_soa_kernels()

    def test_env_default_is_honored_by_the_engine(self, uniform_small_deployment, nw_config, monkeypatch):
        monkeypatch.setenv("REPRO_SOA_KERNELS", "0")
        sim = build_simulation(uniform_small_deployment, nw_config)
        assert not sim.use_soa_kernels
        assert sim.plan_cache_info()["soa_kernels"] == {"enabled": False}


class TestEligibility:
    def test_unitdisk_deterministic_compiles(self, uniform_small_deployment, nw_config):
        sim = build_simulation(uniform_small_deployment, nw_config, use_soa_kernels=True)
        info = sim.plan_cache_info()["soa_kernels"]
        assert info["enabled"]
        assert info["slots_compiled"] > 0
        assert info["member_slots"] >= info["slots_compiled"]
        # The SoA tier replaces cohort execution outright (the cohort runtime
        # rebinds node protocols to shared machines, which would invalidate
        # the compiled slot specs).
        assert sim.plan_cache_info()["cohort_runtime"] == {"enabled": False}

    @pytest.mark.parametrize(
        "overrides",
        [{"channel": "friis"}, {"loss_probability": 0.2}, {"channel": "friis", "loss_probability": 0.2}],
        ids=["friis", "loss", "friis-loss"],
    )
    def test_friis_and_loss_compile(self, uniform_small_deployment, overrides):
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=11, **overrides
        )
        sim = build_simulation(uniform_small_deployment, config, use_soa_kernels=True)
        info = sim.plan_cache_info()["soa_kernels"]
        assert info["enabled"] and info["slots_compiled"] > 0

    def test_unitdisk_capture_is_ineligible(self, uniform_small_deployment):
        # Capture draws interleave a uniform and an integer choice per
        # collision — data-dependent, unbatchable, hence scalar/cohort only.
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=11,
            capture_probability=0.5,
        )
        sim = build_simulation(uniform_small_deployment, config, use_soa_kernels=True)
        assert sim.plan_cache_info()["soa_kernels"] == {"enabled": False}

    def test_tracing_keeps_the_kernels(self, uniform_small_deployment, nw_config):
        sim = build_simulation(
            uniform_small_deployment, nw_config, trace=EventLog(), use_soa_kernels=True
        )
        info = sim.plan_cache_info()["soa_kernels"]
        assert info["enabled"] and info["slots_compiled"] > 0


class TestThreeTierEquivalence:
    """Records and RNG positions must agree bit-for-bit across all tiers."""

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        protocol=st.sampled_from(["neighborwatch", "multipath", "epidemic"]),
        idle_veto=st.booleans(),
    )
    def test_random_uniform_deployments(self, seed, protocol, idle_veto):
        deployment = uniform_deployment(70, 7.5, 7.5, rng=seed % 101)
        config = ScenarioConfig(
            protocol=protocol,
            radius=3.0,
            message_length=2,
            seed=seed,
            idle_veto=idle_veto,
        )
        runs = _run_tiers(deployment, config)
        _assert_tiers_identical(runs)
        info = runs["soa"][2]["soa_kernels"]
        assert info["enabled"] and info["slots_run"] > 0

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        protocol=st.sampled_from(["neighborwatch", "multipath", "epidemic"]),
        loss=st.sampled_from([0.15, 0.35]),
    )
    def test_lossy_unitdisk(self, seed, protocol, loss):
        # Loss-only unit disk: one batched listener-ordered draw per phase —
        # the RNG tail assertion is what pins the stream position.
        deployment = uniform_deployment(70, 7.5, 7.5, rng=seed % 101)
        config = ScenarioConfig(
            protocol=protocol,
            radius=3.0,
            message_length=2,
            seed=seed,
            loss_probability=loss,
        )
        runs = _run_tiers(deployment, config, max_rounds=900)
        _assert_tiers_identical(runs)
        info = runs["soa"][2]["soa_kernels"]
        assert info["enabled"] and info["slots_run"] > 0

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        protocol=st.sampled_from(["neighborwatch", "multipath", "epidemic"]),
        loss=st.sampled_from([0.0, 0.2]),
    )
    def test_friis_power_sum_groups(self, seed, protocol, loss):
        # Friis busy resolves through the compiled power blocks; with loss,
        # the decodable-listener draw counts must also replay exactly.
        deployment = uniform_deployment(70, 7.5, 7.5, rng=seed % 101)
        config = ScenarioConfig(
            protocol=protocol,
            radius=3.0,
            message_length=2,
            seed=seed,
            channel="friis",
            loss_probability=loss,
        )
        runs = _run_tiers(deployment, config, max_rounds=900)
        _assert_tiers_identical(runs)
        info = runs["soa"][2]["soa_kernels"]
        assert info["enabled"] and info["slots_run"] > 0

    def test_crashed_and_liars_ride_along(self, uniform_small_deployment, nw_config):
        faults = FaultPlan(crashed=(5, 17), liars=(9,))
        runs = _run_tiers(uniform_small_deployment, nw_config, faults)
        _assert_tiers_identical(runs)
        assert runs["soa"][2]["soa_kernels"]["slots_run"] > 0

    def test_tiling_composes_with_the_kernels(self, uniform_small_deployment, nw_config):
        clear_link_cache()
        sim = build_simulation(
            uniform_small_deployment, nw_config, use_soa_kernels=True, use_spatial_tiling=True
        )
        tiled = (sim.run(MAX_ROUNDS).to_record(), sim.rng.random())
        runs = _run_tiers(uniform_small_deployment, nw_config)
        assert tiled == (runs["soa"][0], runs["soa"][1])


class TestScalarFallback:
    def test_jammers_fall_back_per_slot_without_drift(self, uniform_small_deployment, nw_config):
        faults = FaultPlan(jammers=(21,), jammer_budget=40, jam_probability=0.5)
        runs = _run_tiers(uniform_small_deployment, nw_config, faults)
        _assert_tiers_identical(runs)
        info = runs["soa"][2]["soa_kernels"]
        # The jammer is an extra in its neighborhood's slots: those
        # occurrences run on the scalar loop, every other slot stays compiled.
        assert info["scalar_fallbacks"] > 0
        assert info["slots_run"] > 0


class TestTraceSynthesis:
    """Traced SoA runs must emit the scalar loop's exact event stream."""

    @staticmethod
    def _trace_bytes(deployment, config, **kwargs):
        clear_link_cache()
        log = EventLog()
        sim = build_simulation(deployment, config, trace=log, **kwargs)
        sim.run(MAX_ROUNDS)
        return "\n".join(str(event) for event in log).encode()

    @pytest.mark.parametrize(
        "protocol,overrides",
        [
            ("neighborwatch", {}),
            ("multipath", {"loss_probability": 0.2}),
            ("epidemic", {"channel": "friis"}),
            ("epidemic", {"loss_probability": 0.25}),
        ],
        ids=["nw-deterministic", "mp-loss", "epidemic-friis", "epidemic-loss"],
    )
    def test_event_streams_byte_identical(self, uniform_small_deployment, protocol, overrides):
        config = ScenarioConfig(
            protocol=protocol, radius=3.0, message_length=2, seed=11, **overrides
        )
        soa = self._trace_bytes(
            uniform_small_deployment, config, use_soa_kernels=True
        )
        scalar = self._trace_bytes(
            uniform_small_deployment,
            config,
            use_soa_kernels=False,
            use_cohort_runtime=False,
        )
        assert soa == scalar


class TestCounters:
    def test_busy_cache_and_run_counters_accumulate(self, uniform_small_deployment, nw_config):
        sim = build_simulation(uniform_small_deployment, nw_config, use_soa_kernels=True)
        before = sim.plan_cache_info()["soa_kernels"]
        assert before["slots_run"] == 0 and before["busy_cache_misses"] == 0
        sim.run(MAX_ROUNDS)
        info = sim.plan_cache_info()["soa_kernels"]
        assert info["slots_run"] > 0
        assert info["busy_cache_misses"] > 0
        assert info["busy_cache_entries"] <= info["busy_cache_misses"]
        assert info["busy_cache_evictions"] == 0

    def test_eviction_counter_and_thrash_warning(
        self, uniform_small_deployment, nw_config, monkeypatch
    ):
        from repro.sim import soa as soa_module

        # Shrink the memo so a normal run overflows it: every clear counts
        # its dropped entries, and the first clear on a >50%-miss group
        # warns once.
        monkeypatch.setattr(soa_module, "_BUSY_CACHE_MAX", 2)
        sim = build_simulation(uniform_small_deployment, nw_config, use_soa_kernels=True)
        with pytest.warns(RuntimeWarning, match="busy cache thrashing"):
            sim.run(MAX_ROUNDS)
        info = sim.plan_cache_info()["soa_kernels"]
        assert info["busy_cache_evictions"] > 0


def _mp_cluster_deployment(profile_break: float = 0.0) -> Deployment:
    """A Friis geometry producing one genuine two-member MultiPath cohort.

    The candidate pair shares the unit square ``(10, 5)`` (side ``R/3`` for
    ``R = 3``), one R-ball and one set of 2R owner views, so their region
    profiles are equal; at 0.6 apart (> ``schedule_separation`` 0.5) the
    greedy colouring gives both slot 1.  Node 3 — a preloaded liar, hence a
    sender with pending COMMIT frames — conflicts with nobody and also lands
    in slot 1, co-owning the pair's broadcast interval.  Its distance to the
    two members straddles the Friis carrier-sense range (``1.5 * R = 4.5``):
    4.45 to the near member (busy) and 5.05 to the far one (silent).  The
    pair are blockers in their own slot and listen during phases 0-3, so the
    liar's first data-bit broadcast is the first state-relevant divergence,
    which must split the cohort.  The liar stays outside both R-balls
    (> 3) and inside both 2R owner views (< 6), so the region profiles stay
    equal.  ``profile_break`` shifts the far member right; at 0.5 it crosses
    into the next region square, which must keep the devices singleton even
    though their protocol states are identical.
    """
    positions = np.asarray(
        [
            [1.0, 1.0],  # source, out of sense range of everything
            [10.2, 5.0],  # near pair member
            [10.8 + profile_break, 5.0],  # far pair member
            [5.75, 5.0],  # straddling liar, co-owner of the pair's slot
        ]
    )
    return Deployment(positions=positions, width=16.0, height=10.0, source_index=0)


def _mp_cluster_config() -> ScenarioConfig:
    # separation < pair distance (0.6): the pair may share a slot.  Friis
    # busy depends on exact distances (not the R-ball), which is what lets
    # two profile-equal devices diverge at all — under unit disk an equal
    # R-ball implies identical busy forever.
    return ScenarioConfig(
        protocol="multipath",
        radius=3.0,
        message_length=2,
        multipath_tolerance=0,
        seed=3,
        channel="friis",
        schedule_separation=0.5,
    )


class TestRegionKeyedMultipathCohorts:
    def test_profile_equal_pair_shares_then_splits_at_divergence(self):
        deployment = _mp_cluster_deployment()
        config = _mp_cluster_config()
        # The liar is the divergence driver: a slot-1 co-owner with preloaded
        # COMMIT frames, straddling the pair's carrier-sense range.
        faults = FaultPlan(liars=(3,))

        clear_link_cache()
        oracle = build_simulation(
            deployment, config, faults, use_cohort_runtime=False, use_soa_kernels=False
        )
        oracle_record = oracle.run(400).to_record()

        clear_link_cache()
        sim = build_simulation(
            deployment, config, faults, use_cohort_runtime=True, use_soa_kernels=False
        )
        pair = [n.protocol for n in sim.nodes if n.node_id in (1, 2)]
        assert pair[0].region_profile == pair[1].region_profile
        info = sim.plan_cache_info()["cohort_runtime"]
        assert info["enabled"] and info["shared_members"] == 2

        record = sim.run(400).to_record()
        assert record == oracle_record
        after = sim.plan_cache_info()["cohort_runtime"]
        assert after["divergence_splits"] > 0

    def test_profile_mismatch_stays_singleton(self):
        deployment = _mp_cluster_deployment(profile_break=0.5)
        config = _mp_cluster_config()
        clear_link_cache()
        sim = build_simulation(
            deployment,
            config,
            FaultPlan(liars=(3,)),
            use_cohort_runtime=True,
            use_soa_kernels=False,
        )
        pair = [n.protocol for n in sim.nodes if n.node_id in (1, 2)]
        assert pair[0].region_profile != pair[1].region_profile
        info = sim.plan_cache_info()["cohort_runtime"]
        assert info["shared_members"] == 0

    def test_standard_separation_forbids_multipath_cohorts(
        self, tiny_grid_deployment, mp_config
    ):
        # The paper's 3R separation: same-slot devices are > 3R apart, so no
        # two can share an R-ball and the region key degenerates to
        # singletons — the historical all-singleton behaviour.
        sim = build_simulation(
            tiny_grid_deployment, mp_config, use_cohort_runtime=True, use_soa_kernels=False
        )
        assert sim.plan_cache_info()["cohort_runtime"]["shared_members"] == 0


class TestDescribeTierEligibility:
    """``experiments describe`` must advertise which execution tier runs."""

    def test_unitdisk_spec_reports_soa(self):
        from repro.experiments.driver import describe_spec
        from repro.experiments.registry import get_spec

        text = describe_spec(get_spec("FIG5"), scale="small")
        assert "execution tier: struct-of-arrays slot kernels" in text

    def test_per_capability_verdicts_and_fallback_notes(self):
        from repro.experiments.driver import _tier_lines

        friis = _tier_lines({"channel": "friis"})
        assert friis[0].startswith("execution tier: struct-of-arrays")
        assert "power-sum" in friis[0]
        lossy = _tier_lines({"loss_probability": 0.2})
        assert lossy[0].startswith("execution tier: struct-of-arrays")
        assert any("loss_probability=0.2" in line for line in lossy)
        capture = _tier_lines({"capture_probability": 0.5})
        assert capture[0].startswith("execution tier: cohort runtime")
        assert any(
            "capture_probability=0.5" in line and "scalar" in line
            for line in capture
        )
        assert any("per-slot" in line for line in _tier_lines({"num_jammers": 15}))
