"""Unit tests for the simulation engine, using small stub protocols."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
import pytest

from repro.core.messages import Frame, FrameKind
from repro.core.protocol import Observation, Protocol
from repro.core.schedule import NodeSchedule
from repro.sim.engine import Simulation, clear_link_cache, link_cache_info
from repro.sim.events import EventKind, EventLog
from repro.sim.node import SimNode
from repro.sim.radio import UnitDiskChannel


class Beacon(Protocol):
    """Broadcasts its payload once in its own slot; delivered immediately."""

    def __init__(self, slot: int, payload=(1,)):
        self._slot = slot
        self._payload = tuple(payload)
        self._sent = False

    def interests(self) -> Iterable[int]:
        return (self._slot,)

    def act(self, slot_cycle, slot, phase) -> Optional[Frame]:
        if slot == self._slot and phase == 0 and not self._sent:
            self._sent = True
            return Frame(FrameKind.PAYLOAD, self.context.node_id, self._payload)
        return None

    def observe(self, slot_cycle, slot, phase, observation: Observation) -> None:
        pass

    @property
    def delivered(self) -> bool:
        return True

    @property
    def delivered_message(self):
        return self._payload


class Listener(Protocol):
    """Listens to one slot and delivers the first payload it decodes."""

    def __init__(self, slot: int, expected_len: int = 1):
        self._slot = slot
        self._message = None
        self._observations = []
        self._expected_len = expected_len

    def interests(self) -> Iterable[int]:
        return (self._slot,)

    def act(self, slot_cycle, slot, phase) -> Optional[Frame]:
        return None

    def observe(self, slot_cycle, slot, phase, observation: Observation) -> None:
        self._observations.append(observation)
        frame = observation.decoded
        if frame is not None and frame.kind is FrameKind.PAYLOAD and self._message is None:
            self._message = tuple(frame.payload)

    @property
    def observations(self):
        return self._observations

    @property
    def delivered(self) -> bool:
        return self._message is not None

    @property
    def delivered_message(self):
        return self._message


def make_sim(positions, protocols, message=(1,), honest=None, radius=2.0, phases=1):
    positions = np.asarray(positions, dtype=float)
    schedule = NodeSchedule(positions, radius=radius, source_index=0, phases_per_slot=phases,
                            separation=2 * radius)
    channel = UnitDiskChannel(radius)
    nodes = []
    for i, proto in enumerate(protocols):
        if proto is not None:
            from repro.core.protocol import NodeContext

            proto.setup(
                NodeContext(
                    node_id=i,
                    position=(float(positions[i, 0]), float(positions[i, 1])),
                    radius=radius,
                    schedule=schedule,
                    message_length=len(message),
                    is_source=(i == 0),
                    source_message=tuple(message) if i == 0 else None,
                )
            )
        nodes.append(
            SimNode(
                node_id=i,
                position=(float(positions[i, 0]), float(positions[i, 1])),
                protocol=proto,
                honest=(honest[i] if honest else True),
            )
        )
    return Simulation(nodes, schedule, channel, message), schedule


class TestEngineBasics:
    def test_beacon_reaches_listener(self):
        positions = [(0, 0), (1, 0)]
        # Node 0 broadcasts in its slot; node 1 listens to that slot.
        schedule_probe = NodeSchedule(np.asarray(positions, float), 2.0, 0, phases_per_slot=1)
        slot0 = schedule_probe.slot_of_node(0)
        sim, _ = make_sim(positions, [Beacon(slot0, (1, 0)), Listener(slot0, 2)], message=(1, 0))
        result = sim.run(max_rounds=20)
        assert result.terminated
        assert result.outcomes[1].delivered
        assert result.outcomes[1].correct

    def test_out_of_range_listener_gets_nothing(self):
        positions = [(0, 0), (10, 0)]
        sim, sched = make_sim(positions, [Beacon(0), Listener(0)])
        result = sim.run(max_rounds=20)
        assert not result.outcomes[1].delivered
        assert not result.terminated

    def test_listener_records_silence_for_empty_slots(self):
        positions = [(0, 0), (1, 0)]
        listener = Listener(0)
        sim, _ = make_sim(positions, [None, listener])
        sim.run_slots(3)
        assert len(listener.observations) >= 1
        assert all(not o.busy for o in listener.observations)

    def test_broadcast_counted(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        sim.run(max_rounds=20)
        assert sim.nodes[0].broadcasts == 1

    def test_crashed_node_inactive_in_results(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), None])
        result = sim.run(max_rounds=10)
        assert not result.outcomes[1].active
        assert result.outcomes[1].delivered is False

    def test_trace_records_broadcasts_and_deliveries(self):
        positions = [(0, 0), (1, 0)]
        trace = EventLog()
        positions_arr = np.asarray(positions, float)
        schedule = NodeSchedule(positions_arr, 2.0, 0, phases_per_slot=1, separation=4.0)
        channel = UnitDiskChannel(2.0)
        protos = [Beacon(0), Listener(0)]
        from repro.core.protocol import NodeContext

        for i, proto in enumerate(protos):
            proto.setup(
                NodeContext(
                    node_id=i,
                    position=tuple(positions[i]),
                    radius=2.0,
                    schedule=schedule,
                    message_length=1,
                    is_source=(i == 0),
                    source_message=(1,) if i == 0 else None,
                )
            )
        nodes = [SimNode(i, tuple(map(float, positions[i])), protos[i]) for i in range(2)]
        sim = Simulation(nodes, schedule, channel, (1,), trace=trace)
        sim.run(max_rounds=20)
        assert len(trace.filter(kind=EventKind.BROADCAST)) == 1
        assert len(trace.deliveries()) >= 1

    def test_node_id_mismatch_rejected(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        schedule = NodeSchedule(positions, 2.0, 0, phases_per_slot=1)
        nodes = [SimNode(1, (0.0, 0.0), None), SimNode(0, (1.0, 0.0), None)]
        with pytest.raises(ValueError):
            Simulation(nodes, schedule, UnitDiskChannel(2.0), (1,))

    def test_interest_out_of_range_rejected(self):
        positions = [(0, 0), (1, 0)]
        with pytest.raises(ValueError):
            make_sim(positions, [Beacon(999), Listener(0)])

    def test_max_rounds_validation(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        with pytest.raises(ValueError):
            sim.run(max_rounds=0)

    def test_run_stops_early_when_all_delivered(self):
        positions = [(0, 0), (1, 0)]
        sim, sched = make_sim(positions, [Beacon(0), Listener(0)])
        result = sim.run(max_rounds=100_000)
        assert result.terminated
        assert result.total_rounds < 100_000

    def test_already_delivered_terminates_immediately(self):
        positions = [(0, 0)]
        sim, _ = make_sim(positions, [Beacon(0)])
        result = sim.run(max_rounds=50)
        assert result.terminated
        assert result.total_rounds == 0


class DoubleInterest(Protocol):
    """Declares the same slot twice and counts how often the engine calls it."""

    def __init__(self, slot: int):
        self._slot = slot
        self.act_calls = 0
        self.observe_calls = 0
        self.end_slot_calls = 0

    def interests(self) -> Iterable[int]:
        return (self._slot, self._slot)

    def act(self, slot_cycle, slot, phase) -> Optional[Frame]:
        self.act_calls += 1
        return None

    def observe(self, slot_cycle, slot, phase, observation: Observation) -> None:
        self.observe_calls += 1

    def end_slot(self, slot_cycle, slot) -> None:
        self.end_slot_calls += 1

    @property
    def delivered(self) -> bool:
        return True

    @property
    def delivered_message(self):
        return (1,)


class TestDeliveryRoundAccuracy:
    """Regression tests: deliveries are stamped at the exact slot, not at the
    next periodic check (which used to quantize delivery_round up to a full
    schedule cycle and inflate latency metrics)."""

    def test_delivery_round_is_exact_not_quantized(self):
        positions = [(0, 0), (1, 0)]
        schedule_probe = NodeSchedule(np.asarray(positions, float), 2.0, 0, phases_per_slot=1,
                                      separation=4.0)
        slot0 = schedule_probe.slot_of_node(0)
        sim, sched = make_sim(positions, [Beacon(slot0, (1, 0)), Listener(slot0, 2)], message=(1, 0))
        result = sim.run(max_rounds=10 * sched.rounds_per_cycle, check_interval_slots=sched.num_slots)
        # The listener decodes during slot0, so its delivery is complete at
        # the end of that slot — not at the end of the first schedule cycle.
        exact = (slot0 + 1) * sched.phases_per_slot
        assert exact < sched.rounds_per_cycle  # the quantized value would differ
        assert result.outcomes[1].delivery_round == exact

    def test_predelivered_node_stamped_at_round_zero(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        result = sim.run(max_rounds=20)
        # The beacon reports delivered from the start, so it is stamped before
        # the first slot runs.
        assert result.outcomes[0].delivery_round == 0

    def test_check_interval_does_not_change_delivery_round(self):
        positions = [(0, 0), (1, 0)]
        schedule_probe = NodeSchedule(np.asarray(positions, float), 2.0, 0, phases_per_slot=1,
                                      separation=4.0)
        slot0 = schedule_probe.slot_of_node(0)
        stamped = []
        for interval in (1, 3, None):
            sim, sched = make_sim(positions, [Beacon(slot0, (1, 0)), Listener(slot0, 2)], message=(1, 0))
            result = sim.run(max_rounds=10 * sched.rounds_per_cycle, check_interval_slots=interval)
            stamped.append(result.outcomes[1].delivery_round)
        assert stamped[0] == stamped[1] == stamped[2]

    def test_check_interval_zero_rejected(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        with pytest.raises(ValueError):
            sim.run(max_rounds=20, check_interval_slots=0)

    def test_check_interval_negative_rejected(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        with pytest.raises(ValueError):
            sim.run(max_rounds=20, check_interval_slots=-3)


class TestInterestDeduplication:
    def test_duplicate_interest_acts_once_per_phase(self):
        positions = [(0, 0), (1, 0)]
        proto = DoubleInterest(0)
        sim, sched = make_sim(positions, [None, proto])
        sim.run_slots(sched.num_slots)  # one full cycle
        assert proto.act_calls == sched.phases_per_slot
        assert proto.observe_calls == sched.phases_per_slot
        assert proto.end_slot_calls == 1

    def test_duplicate_interest_single_broadcast(self):
        positions = [(0, 0), (1, 0)]

        class ChattyDoubleBeacon(Beacon):
            """Transmits in every phase of its slot; duplicate interests."""

            def interests(self):
                return (self._slot, self._slot)

            def act(self, slot_cycle, slot, phase):
                if slot == self._slot:
                    return Frame(FrameKind.PAYLOAD, self.context.node_id, self._payload)
                return None

        beacon = ChattyDoubleBeacon(0, (1,))
        listener = Listener(0)
        sim, sched = make_sim(positions, [beacon, listener])
        sim.run_slots(1)
        # Before deduplication the node appeared twice in the participant
        # list and its frame was put on the air twice per phase.
        assert sim.nodes[0].broadcasts == sched.phases_per_slot


class TestFlexTransmitters:
    def test_adversary_outside_interests_can_jam(self):
        from repro.adversary.jammer import ContinuousJammer

        positions = [(0, 0), (1, 0), (0.5, 0.5)]
        schedule_probe = NodeSchedule(np.asarray(positions, float), 2.0, 0, phases_per_slot=1,
                                      separation=4.0)
        slot0 = schedule_probe.slot_of_node(0)
        beacon, listener, jammer = Beacon(slot0), Listener(slot0), ContinuousJammer(budget=100)
        sim, _ = make_sim(positions, [beacon, listener, jammer], honest=[True, True, False])
        result = sim.run(max_rounds=10)
        # The jammer collides with the beacon's single broadcast: no delivery.
        assert not result.outcomes[1].delivered
        assert result.outcomes[2].broadcasts > 0
        assert result.adversary_broadcasts > 0


class TestLinkCacheIntrospection:
    """The module-level link-state cache is observable and resettable, so
    cached-channel tests cannot contaminate each other (the autouse
    ``_isolated_link_cache`` fixture clears it before every test)."""

    def test_starts_empty_thanks_to_isolation_fixture(self):
        info = link_cache_info()
        assert info["entries"] == 0
        assert info["hits"] == 0 and info["misses"] == 0
        assert info["max_entries"] >= 1

    def test_counts_misses_then_hits_for_same_deployment(self):
        positions = [(0, 0), (1, 0), (2, 0)]
        make_sim(positions, [Beacon(0), Listener(0), Listener(0)])
        after_first = link_cache_info()
        assert after_first["entries"] == 1
        assert after_first["misses"] == 1 and after_first["hits"] == 0
        # Same channel parameters + same positions: served from the cache.
        make_sim(positions, [Beacon(0), Listener(0), Listener(0)])
        after_second = link_cache_info()
        assert after_second["entries"] == 1
        assert after_second["misses"] == 1 and after_second["hits"] == 1

    def test_distinct_positions_get_distinct_entries(self):
        make_sim([(0, 0), (1, 0)], [Beacon(0), Listener(0)])
        make_sim([(0, 0), (1.5, 0)], [Beacon(0), Listener(0)])
        info = link_cache_info()
        assert info["entries"] == 2
        assert info["misses"] == 2

    def test_clear_resets_entries_and_counters(self):
        make_sim([(0, 0), (1, 0)], [Beacon(0), Listener(0)])
        make_sim([(0, 0), (1, 0)], [Beacon(0), Listener(0)])
        assert link_cache_info()["hits"] == 1
        clear_link_cache()
        info = link_cache_info()
        assert info == {**info, "entries": 0, "hits": 0, "misses": 0}
        # The next identical construction is a miss again: a recompute, not
        # a stale read.
        make_sim([(0, 0), (1, 0)], [Beacon(0), Listener(0)])
        assert link_cache_info()["misses"] == 1

    def test_bounded_by_max_entries(self):
        for k in range(link_cache_info()["max_entries"] + 3):
            make_sim([(0, 0), (1 + 0.01 * k, 0)], [Beacon(0), Listener(0)])
        info = link_cache_info()
        assert info["entries"] <= info["max_entries"]


class FlexBeacon(Beacon):
    """A beacon that may also transmit outside its declared interests."""

    may_transmit_anywhere = True

    def __init__(self, slot: int, payload=(1,)):
        super().__init__(slot, payload)
        self.wants_slot_queries = []

    def wants_slot(self, slot_cycle, slot) -> bool:
        self.wants_slot_queries.append((slot_cycle, slot))
        return False


class TestSlotPlan:
    """The compiled slot-plan layer: records, flex candidates and caches."""

    def test_slot_records_cover_interest_map(self):
        positions = [(0, 0), (1, 0), (2, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0), Listener(0)])
        plan = sim.plan
        assert set(plan.slot_records) == set(plan.interest_map)
        for slot, ids in plan.interest_map.items():
            assert tuple(rec[0] for rec in plan.slot_records[slot]) == ids

    def test_participant_arrays_frozen(self):
        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        for array in sim.plan.participant_arrays.values():
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 99

    def test_flex_candidates_exclude_interest_set_members(self):
        positions = [(0, 0), (1, 0), (0.5, 0.5)]
        flex = FlexBeacon(0)
        sim, sched = make_sim(positions, [Beacon(0), Listener(0), flex])
        # The flex node declared interest in slot 0, so it is not a candidate
        # there — but it is everywhere else.
        assert 0 not in sim.plan.flex_candidates or all(
            rec[0] != 2 for _, rec in sim.plan.flex_candidates[0]
        )
        for slot in range(1, sched.num_slots):
            assert any(rec[0] == 2 for _, rec in sim.plan.flex_candidates.get(slot, ()))

    def test_wants_slot_not_queried_for_interested_slots(self):
        positions = [(0, 0), (1, 0), (0.5, 0.5)]
        flex = FlexBeacon(0)
        sim, sched = make_sim(positions, [Beacon(0), Listener(0), flex])
        sim.run_slots(sched.num_slots)  # one full cycle
        queried_slots = {slot for _, slot in flex.wants_slot_queries}
        assert 0 not in queried_slots
        assert queried_slots == set(range(1, sched.num_slots))

    def test_round_memo_used_for_deterministic_channel(self):
        positions = [(0, 0), (1, 0)]

        class ChattyBeacon(Beacon):
            def act(self, slot_cycle, slot, phase):
                if slot == self._slot:
                    return Frame(FrameKind.PAYLOAD, self.context.node_id, self._payload)
                return None

        sim, sched = make_sim(positions, [ChattyBeacon(0), Listener(0)])
        sim.run_slots(4 * sched.num_slots)
        info = sim.plan_cache_info()
        assert info["round_memo"]["misses"] >= 1
        assert info["round_memo"]["hits"] >= 1
        assert info["submatrix"]["entries"] >= 1

    def test_round_memo_disabled_for_stochastic_channel(self):
        positions = np.asarray([(0.0, 0.0), (1.0, 0.0)])
        schedule = NodeSchedule(positions, radius=2.0, source_index=0, phases_per_slot=1,
                                separation=4.0)

        class ChattyBeacon(Beacon):
            def act(self, slot_cycle, slot, phase):
                if slot == self._slot:
                    return Frame(FrameKind.PAYLOAD, self.context.node_id, self._payload)
                return None

        protos = [ChattyBeacon(0), Listener(0)]
        from repro.core.protocol import NodeContext

        for i, proto in enumerate(protos):
            proto.setup(NodeContext(node_id=i, position=(float(positions[i][0]), float(positions[i][1])),
                                    radius=2.0, schedule=schedule, message_length=1,
                                    is_source=(i == 0), source_message=(1,) if i == 0 else None))
        nodes = [SimNode(i, (float(positions[i][0]), float(positions[i][1])), protos[i])
                 for i in range(2)]
        channel = UnitDiskChannel(2.0, loss_probability=0.5)
        sim = Simulation(nodes, schedule, channel, (1,))
        sim.run_slots(4 * schedule.num_slots)
        info = sim.plan_cache_info()
        assert info["round_memo"]["hits"] == 0 and info["round_memo"]["misses"] == 0
        # The submatrix cache still works: it never interacts with the RNG.
        assert info["submatrix"]["hits"] >= 1

    def test_submatrix_cache_is_bounded(self):
        from repro.sim.plan import SlotPlan

        positions = [(0, 0), (1, 0)]
        sim, _ = make_sim(positions, [Beacon(0), Listener(0)])
        plan = SlotPlan(sim.nodes, sim.schedule, submatrix_max_entries=2)
        state = np.ones((2, 2), dtype=bool)
        for k in range(5):
            plan.submatrix((k,), state, [0], [1])
        info = plan.cache_info()
        assert info["submatrix"]["entries"] <= 2
        assert info["submatrix"]["misses"] == 5

    def test_transmissions_interned_across_slots(self):
        positions = [(0, 0), (1, 0)]

        class ChattyBeacon(Beacon):
            def act(self, slot_cycle, slot, phase):
                if slot == self._slot:
                    return Frame(FrameKind.PAYLOAD, self.context.node_id, self._payload)
                return None

        sim, sched = make_sim(positions, [ChattyBeacon(0), Listener(0)])
        sim.run_slots(6 * sched.num_slots)
        assert sim.plan_cache_info()["transmissions_interned"] == 1
