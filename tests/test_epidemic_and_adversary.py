"""Tests for the epidemic baseline and the adversary models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.budget import BroadcastBudget
from repro.adversary.crash import crashes_for_survivor_count, crashes_for_target_density, survivors
from repro.adversary.jammer import ContinuousJammer, VetoJammer
from repro.adversary.liar import (
    fake_message_for,
    lying_epidemic_node,
    lying_multipath_node,
    lying_neighborwatch_node,
    lying_node_factory,
)
from repro.adversary.placement import (
    faults_in_neighborhood,
    fraction_to_count,
    max_faults_per_neighborhood,
    random_fault_selection,
)
from repro.adversary.spoofer import BitFlipSpoofer, ScriptedAdversary
from repro.core.epidemic import EpidemicConfig, EpidemicNode
from repro.core.messages import FrameKind
from repro.core.multipath import MultiPathNode
from repro.core.neighborwatch import NeighborWatchNode
from repro.adversary.placement import faults_in_square  # noqa: F401  (re-exported helper)
from repro.sim.builder import run_scenario
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.topology.deployment import grid_jittered_deployment, uniform_deployment


@pytest.fixture(scope="module")
def grid_dep():
    return grid_jittered_deployment(8, 8, spacing=1.0)


def epi_config(**kwargs) -> ScenarioConfig:
    defaults = dict(protocol="epidemic", radius=3.0, message_length=3, seed=3)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestEpidemicBaseline:
    def test_full_delivery_without_faults(self, grid_dep):
        result = run_scenario(grid_dep, epi_config())
        assert result.terminated
        assert result.completion_fraction == 1.0
        assert result.correctness_fraction == 1.0

    def test_much_faster_than_neighborwatch(self, grid_dep):
        epidemic = run_scenario(grid_dep, epi_config())
        nw = run_scenario(grid_dep, epi_config().with_protocol("neighborwatch"))
        assert nw.completion_rounds > 2 * epidemic.completion_rounds

    def test_single_liar_poisons_its_region(self, grid_dep):
        """The baseline offers no authenticity whatsoever."""
        src = grid_dep.source_index
        # pick a node far from the source
        dist = np.abs(grid_dep.positions - grid_dep.positions[src]).max(axis=1)
        liar = int(np.argmax(dist))
        result = run_scenario(grid_dep, epi_config(), FaultPlan(liars=(liar,)))
        assert result.correctness_fraction < 1.0

    def test_jammers_break_flooding(self, grid_dep):
        """A handful of jamming devices disrupt the unprotected flood."""
        jammers = random_fault_selection(grid_dep.num_nodes, 10, exclude=[grid_dep.source_index], rng=5)
        clean = run_scenario(grid_dep, epi_config())
        jammed = run_scenario(
            grid_dep,
            epi_config(),
            FaultPlan(jammers=tuple(jammers), jammer_budget=50, jam_probability=1.0),
        )
        assert jammed.completion_fraction <= clean.completion_fraction

    def test_rebroadcast_config_validation(self):
        with pytest.raises(ValueError):
            EpidemicConfig(rebroadcast_count=0)

    def test_requires_single_phase_schedule(self):
        import numpy as np

        from repro.core.protocol import NodeContext
        from repro.core.schedule import NodeSchedule

        node = EpidemicNode()
        sched = NodeSchedule(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0, 0, phases_per_slot=6)
        with pytest.raises(ValueError):
            node.setup(
                NodeContext(node_id=1, position=(1.0, 0.0), radius=2.0, schedule=sched, message_length=2)
            )

    def test_ignores_malformed_payload(self):
        import numpy as np

        from repro.core.messages import Frame
        from repro.core.protocol import ChannelState, NodeContext, Observation
        from repro.core.schedule import NodeSchedule

        node = EpidemicNode()
        sched = NodeSchedule(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0, 0, phases_per_slot=1)
        node.setup(
            NodeContext(node_id=1, position=(1.0, 0.0), radius=2.0, schedule=sched, message_length=3)
        )
        bad_length = Observation(ChannelState.MESSAGE, Frame(FrameKind.PAYLOAD, 0, (1, 0)))
        bad_values = Observation(ChannelState.MESSAGE, Frame(FrameKind.PAYLOAD, 0, (1, 2, 0)))
        node.observe(0, 0, 0, bad_length)
        node.observe(0, 0, 0, bad_values)
        assert not node.delivered


class TestBroadcastBudget:
    def test_unlimited(self):
        budget = BroadcastBudget(None)
        assert budget.remaining is None
        assert budget.spend(1000)
        assert not budget.exhausted

    def test_limited(self):
        budget = BroadcastBudget(2)
        assert budget.spend()
        assert budget.spend()
        assert not budget.spend()
        assert budget.exhausted
        assert budget.spent == 2
        assert budget.remaining == 0

    def test_can_spend_amount(self):
        budget = BroadcastBudget(3)
        assert budget.can_spend(3)
        assert not budget.can_spend(4)
        with pytest.raises(ValueError):
            budget.can_spend(-1)

    def test_negative_limit(self):
        with pytest.raises(ValueError):
            BroadcastBudget(-1)


class TestJammerUnits:
    def _setup(self, adversary):
        import numpy as np

        from repro.core.protocol import NodeContext
        from repro.core.schedule import NodeSchedule

        sched = NodeSchedule(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0, 0)
        adversary.setup(
            NodeContext(node_id=1, position=(1.0, 0.0), radius=2.0, schedule=sched, message_length=2)
        )
        return adversary

    def test_veto_jammer_targets_veto_phases(self):
        jammer = self._setup(VetoJammer(budget=100, jam_probability=1.0, rng=np.random.default_rng(0)))
        assert jammer.wants_slot(0, 3)
        frames = [jammer.act(0, 3, phase) for phase in range(6)]
        assert frames[0] is None and frames[2] is None
        assert frames[4] is not None and frames[5] is not None
        assert frames[4].kind is FrameKind.JAM

    def test_veto_jammer_respects_budget(self):
        jammer = self._setup(VetoJammer(budget=1, jam_probability=1.0, rng=np.random.default_rng(0)))
        jammer.wants_slot(0, 1)
        assert jammer.act(0, 1, 4) is not None
        assert jammer.act(0, 1, 5) is None
        assert not jammer.wants_slot(0, 2)

    def test_veto_jammer_probability_zero_never_jams(self):
        jammer = self._setup(VetoJammer(budget=10, jam_probability=0.0, rng=np.random.default_rng(0)))
        assert not jammer.wants_slot(0, 1)

    def test_continuous_jammer(self):
        jammer = self._setup(ContinuousJammer(budget=3))
        count = 0
        for slot in range(2):
            if jammer.wants_slot(0, slot):
                for phase in range(6):
                    if jammer.act(0, slot, phase) is not None:
                        count += 1
        assert count == 3
        assert jammer.broadcasts_spent == 3

    def test_jammer_never_delivers(self):
        jammer = self._setup(VetoJammer(budget=5))
        assert not jammer.delivered
        assert jammer.delivered_message is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            VetoJammer(jam_probability=1.5)
        with pytest.raises(ValueError):
            VetoJammer(target_phases=())


class TestScriptedAdversaries:
    def _setup(self, adversary):
        import numpy as np

        from repro.core.protocol import NodeContext
        from repro.core.schedule import NodeSchedule

        sched = NodeSchedule(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0, 0)
        adversary.setup(
            NodeContext(node_id=1, position=(1.0, 0.0), radius=2.0, schedule=sched, message_length=2)
        )
        return adversary

    def test_scripted_adversary_follows_script(self):
        adv = self._setup(ScriptedAdversary({(0, 2, 4): FrameKind.JAM}))
        assert adv.wants_slot(0, 2)
        assert not adv.wants_slot(0, 3)
        assert adv.act(0, 2, 4).kind is FrameKind.JAM
        assert adv.act(0, 2, 3) is None

    def test_scripted_adversary_predicate(self):
        adv = self._setup(
            ScriptedAdversary(predicate=lambda c, s, p: FrameKind.JAM if p == 5 else None, budget=2)
        )
        assert adv.wants_slot(0, 0)
        assert adv.act(0, 0, 5) is not None
        assert adv.act(0, 1, 5) is not None
        assert adv.act(0, 2, 5) is None  # budget exhausted

    def test_scripted_requires_script_or_predicate(self):
        with pytest.raises(ValueError):
            ScriptedAdversary()

    def test_bitflip_spoofer_targets_data_phases(self):
        adv = self._setup(BitFlipSpoofer(victim_slot=3, budget=10))
        assert adv.wants_slot(0, 3)
        assert not adv.wants_slot(0, 4)
        assert adv.act(0, 3, 0) is not None
        assert adv.act(0, 3, 1) is None
        assert adv.act(0, 3, 2) is not None

    def test_bitflip_spoofer_cycle_window(self):
        adv = self._setup(BitFlipSpoofer(victim_slot=1, start_cycle=1, end_cycle=2))
        assert not adv.wants_slot(0, 1)
        assert adv.wants_slot(1, 1)
        assert adv.wants_slot(2, 1)
        assert not adv.wants_slot(3, 1)


class TestLiars:
    def test_fake_message_is_complement(self):
        assert fake_message_for((1, 0, 1)) == (0, 1, 0)

    def test_factory_types(self):
        fake = (0, 1)
        assert isinstance(lying_neighborwatch_node(fake), NeighborWatchNode)
        assert isinstance(lying_multipath_node(fake), MultiPathNode)
        assert isinstance(lying_epidemic_node(fake), EpidemicNode)
        assert isinstance(lying_node_factory("nw2", fake), NeighborWatchNode)
        assert isinstance(lying_node_factory("multipath", fake, tolerance=2), MultiPathNode)
        assert isinstance(lying_node_factory("epidemic", fake), EpidemicNode)

    def test_factory_unknown_protocol(self):
        with pytest.raises(ValueError):
            lying_node_factory("unknown", (1, 0))

    def test_lying_multipath_never_relays_heard(self):
        node = lying_multipath_node((1, 0), tolerance=2)
        assert node.config.relay_heard is False


class TestPlacementHelpers:
    def test_fraction_to_count(self):
        assert fraction_to_count(600, 0.05) == 30
        with pytest.raises(ValueError):
            fraction_to_count(100, 1.5)

    def test_random_selection_excludes(self):
        picked = random_fault_selection(100, 10, exclude=[0, 1, 2], rng=0)
        assert len(picked) == 10
        assert not set(picked) & {0, 1, 2}

    def test_random_selection_reproducible(self):
        assert random_fault_selection(100, 10, rng=5) == random_fault_selection(100, 10, rng=5)

    def test_random_selection_too_many(self):
        with pytest.raises(ValueError):
            random_fault_selection(5, 10)

    def test_faults_in_neighborhood(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [10.0, 0.0]])
        picked = faults_in_neighborhood(pos, center=(0, 0), radius=2.5, count=10)
        assert picked == [0, 1, 2]

    def test_max_faults_per_neighborhood(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [10.0, 0.0]])
        assert max_faults_per_neighborhood(pos, [1, 2], radius=2.5) == 2
        assert max_faults_per_neighborhood(pos, [3], radius=2.5) == 1
        assert max_faults_per_neighborhood(pos, [], radius=2.5) == 0


class TestCrashHelpers:
    def test_survivor_count(self, grid_dep):
        crashed = crashes_for_survivor_count(grid_dep, 50, rng=0)
        assert len(crashed) == grid_dep.num_nodes - 50
        assert grid_dep.source_index not in crashed

    def test_target_density(self, grid_dep):
        crashed = crashes_for_target_density(grid_dep, target_density=0.5, rng=0)
        active = grid_dep.num_nodes - len(crashed)
        assert active == pytest.approx(0.5 * grid_dep.area, abs=1)

    def test_survivors(self):
        assert survivors(5, [1, 3]) == [0, 2, 4]

    def test_invalid_args(self, grid_dep):
        with pytest.raises(ValueError):
            crashes_for_survivor_count(grid_dep, 0)
        with pytest.raises(ValueError):
            crashes_for_target_density(grid_dep, 0)
