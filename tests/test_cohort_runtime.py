"""Cohort runtime: grouping, copy-on-divergence, re-merge and oracle fidelity.

The shared-state batched executor (:mod:`repro.sim.batch`) is pinned against
the per-device oracle in two complementary ways:

* whole-run record identity for representative scenarios (here and in
  ``tests/test_kernel_equivalence.py``), and
* a *structural* property: with re-merging disabled, cohorts split **exactly**
  at the first round where two members' state-relevant observation streams
  differ — never earlier (no spurious split), never later (which would have
  shared a transition that should have diverged) — and splits only ever
  refine the partition.  The oracle run is instrumented to record, per
  device, the projected (``busy``) observation of every round its phase
  machine declared relevant, which is the ground truth the split log must
  match.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.placement import random_fault_selection
from repro.core.neighborwatch import NeighborWatchNode
from repro.core.runtime import OPAQUE_LISTEN, PhaseContext, PhaseDrivenProtocol, action_spec
from repro.core.messages import FrameKind
from repro.core.protocol import Protocol
from repro.sim.batch import CohortRuntime
from repro.sim.builder import build_simulation
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.sim.engine import clear_link_cache
from repro.sim.plan import SlotPlan
from repro.topology.deployment import grid_jittered_deployment, uniform_deployment


MAX_ROUNDS = 2500


def _nw_scenario(seed: int, scenario: str):
    """The three divergence-heavy scenarios called out in the issue.

    Deployments are chosen so splits genuinely occur: marginal Friis power
    needs a map wider than the schedule's slot-reuse separation (co-slot
    squares bleeding weak signals across reception boundaries), while
    capture/jamming divergence shows up on a small dense grid already.
    Note that pure loss and pure capture never split a ``busy``-projected
    cohort — losses and capture resolution change *what* decodes, not whether
    the channel is sensed busy — which the runs below double-check implicitly
    (record identity holds regardless).
    """
    if scenario == "lossy-friis":
        deployment = uniform_deployment(300, 13.0, 13.0, rng=seed % 97)
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=seed,
            channel="friis", loss_probability=0.25,
        )
        return deployment, config, FaultPlan()
    deployment = grid_jittered_deployment(4, 4, spacing=1.0)
    if scenario == "capture":
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=seed,
            channel="unitdisk", capture_probability=0.6, loss_probability=0.15,
        )
        jammers = random_fault_selection(25, 2, exclude=[12], rng=seed)
        faults = FaultPlan(jammers=tuple(jammers), jammer_budget=40, jam_probability=0.25)
        return deployment, config, faults
    if scenario == "jammer":
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=seed,
        )
        jammers = random_fault_selection(25, 3, exclude=[12], rng=seed)
        faults = FaultPlan(jammers=tuple(jammers), jammer_budget=40, jam_probability=0.3)
        return deployment, config, faults
    raise ValueError(scenario)


def _cohort_sim(deployment, config, faults=None, **runtime_kwargs):
    """A simulation driven by a freshly attached, configurable CohortRuntime."""
    sim = build_simulation(deployment, config, faults, use_cohort_runtime=False, use_soa_kernels=False)
    runtime = CohortRuntime(sim.nodes, sim.plan, **runtime_kwargs)
    sim.cohort_runtime = runtime
    sim._slot_runtime = runtime if runtime.cohorts else None
    return sim, runtime


def _instrumented_oracle(deployment, config, faults):
    """A scalar-oracle simulation whose devices log their relevant observations.

    Returns ``(sim, streams)`` where ``streams[node_id]`` is the ordered list
    of ``((cycle, slot, phase), busy)`` for every round the device's phase
    machine declared relevant (``phase_act`` returned ``None`` — listen and
    care).  Rounds the machine transmits in or declares opaque are excluded,
    mirroring exactly what the cohort runtime is allowed to split on.
    """
    sim = build_simulation(deployment, config, faults, use_cohort_runtime=False, use_soa_kernels=False)
    streams: dict[int, list] = {}
    for node in sim.nodes:
        proto = node.protocol
        if proto is None or not node.honest or not getattr(proto, "shareable", False):
            continue
        log: list = []
        streams[node.node_id] = log
        relevance: dict = {}

        def wrapped_phase_act(ctx, _proto=proto, _relevance=relevance):
            spec = type(_proto).phase_act(_proto, ctx)
            _relevance[(ctx.slot_cycle, ctx.slot, ctx.phase)] = spec is None
            return spec

        def wrapped_observe(cycle, slot, phase, observation, _proto=proto,
                            _relevance=relevance, _log=log):
            if _relevance.get((cycle, slot, phase)):
                _log.append(((cycle, slot, phase), observation.busy))
            type(_proto).observe(_proto, cycle, slot, phase, observation)

        proto.phase_act = wrapped_phase_act
        proto.observe = wrapped_observe
    # The plan bound the un-wrapped methods at construction; recompile it.
    sim.plan = SlotPlan(sim.nodes, sim.schedule)
    return sim, streams


class TestCohortGrouping:
    def test_square_members_share_interests_and_machines(self, tiny_grid_deployment, nw_config):
        sim = build_simulation(tiny_grid_deployment, nw_config, use_cohort_runtime=True, use_soa_kernels=False)
        runtime = sim.cohort_runtime
        assert runtime is not None and runtime.cohorts
        for cohort in runtime.cohorts:
            assert len(cohort.members) >= 2
            for node in cohort.members:
                assert node.protocol is cohort.machine
                assert node.honest
                assert tuple(type(cohort.machine).interests(node.protocol)) == cohort.slots

    def test_adversaries_liars_and_source_are_singletons(self, tiny_grid_deployment, nw_config):
        jammers = random_fault_selection(25, 2, exclude=[12], rng=9)
        liars = random_fault_selection(25, 2, exclude=[12] + list(jammers), rng=10)
        faults = FaultPlan(jammers=tuple(jammers), jammer_budget=10, liars=tuple(liars))
        sim = build_simulation(tiny_grid_deployment, nw_config, faults, use_cohort_runtime=True, use_soa_kernels=False)
        runtime = sim.cohort_runtime
        shared = set(runtime.cohort_of)
        assert tiny_grid_deployment.source_index not in shared
        for node_id in (*jammers, *liars):
            assert node_id not in shared

    def test_multipath_runs_all_singleton_on_the_scalar_loop(self, tiny_grid_deployment, mp_config):
        sim = build_simulation(tiny_grid_deployment, mp_config, use_cohort_runtime=True, use_soa_kernels=False)
        info = sim.plan_cache_info()["cohort_runtime"]
        assert info["enabled"] is True
        assert info["active"] is False
        assert info["shared_members"] == 0
        assert sim._slot_runtime is None

    def test_plan_cache_info_shape(self, tiny_grid_deployment, nw_config):
        sim = build_simulation(tiny_grid_deployment, nw_config, use_cohort_runtime=True, use_soa_kernels=False)
        sim.run(600)
        info = sim.plan_cache_info()
        assert set(info) == {
            "submatrix", "round_memo", "transmissions_interned", "cohort_runtime",
            "soa_kernels", "spatial_tiling",
        }
        cohort_info = info["cohort_runtime"]
        assert set(cohort_info) == {
            "enabled", "active", "initial_cohorts", "cohorts", "shared_members",
            "singletons", "share_hits", "divergence_splits", "cohort_merges",
        }
        assert cohort_info["share_hits"] > 0

        scalar = build_simulation(tiny_grid_deployment, nw_config, use_cohort_runtime=False, use_soa_kernels=False)
        assert scalar.plan_cache_info()["cohort_runtime"] == {"enabled": False}


class TestSplitExactness:
    """Cohorts split exactly at the first relevant-observation divergence."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        scenario=st.sampled_from(["lossy-friis", "capture", "jammer"]),
    )
    def test_splits_match_first_divergence(self, seed, scenario):
        deployment, config, faults = _nw_scenario(seed, scenario)

        clear_link_cache()
        oracle, streams = _instrumented_oracle(deployment, config, faults)
        oracle_result = oracle.run(MAX_ROUNDS)

        clear_link_cache()
        sim, runtime = _cohort_sim(
            deployment, config, faults, record_splits=True, allow_remerge=False
        )
        cohort_result = sim.run(MAX_ROUNDS)

        # The hard contract first: not a bit may move.
        assert cohort_result.to_record() == oracle_result.to_record()
        assert runtime.merge_log == []

        # Monotone refinement: each split partitions its parent's members.
        for _when, parent_ids, groups in runtime.split_log:
            flattened = [m for group in groups for m in group]
            assert sorted(flattened) == sorted(parent_ids)
            assert len(groups) >= 2

        # Exactness: the groups of every split diverge at precisely the
        # recorded round, and agree on every relevant round before it.
        for when, _parent_ids, groups in runtime.split_log:
            leaders = [group[0] for group in groups]
            for i, a in enumerate(leaders):
                for b in leaders[i + 1:]:
                    seq_a, seq_b = streams[a], streams[b]
                    diff = next(
                        (j for j, (ea, eb) in enumerate(zip(seq_a, seq_b)) if ea != eb),
                        None,
                    )
                    assert diff is not None, (
                        f"devices {a} and {b} were split at {when} but their "
                        "relevant observation streams never differ"
                    )
                    assert seq_a[diff][0] == when and seq_b[diff][0] == when
            # Members grouped together still agree at the split round.
            for group in groups:
                anchor = streams[group[0]]
                for member in group[1:]:
                    other = streams[member]
                    prefix = min(len(anchor), len(other))
                    upto = [e for e in anchor[:prefix] if e[0] <= when]
                    assert other[: len(upto)] == upto

        # Final partition: members sharing a cohort never observed
        # differently on any relevant round (no split was missed).
        final: dict[int, list[int]] = {}
        for node_id, cohort in runtime.cohort_of.items():
            final.setdefault(id(cohort), []).append(node_id)
        for members in final.values():
            anchor = streams[members[0]]
            for member in members[1:]:
                assert streams[member] == anchor


class TestRemerge:
    def test_remerge_preserves_records_and_counters(self, tiny_grid_deployment):
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=23,
            channel="friis", loss_probability=0.3,
        )
        clear_link_cache()
        oracle = build_simulation(tiny_grid_deployment, config, use_cohort_runtime=False, use_soa_kernels=False)
        oracle_result = oracle.run(MAX_ROUNDS)

        clear_link_cache()
        sim, runtime = _cohort_sim(tiny_grid_deployment, config, record_splits=True)
        result = sim.run(MAX_ROUNDS)
        assert result.to_record() == oracle_result.to_record()

        info = runtime.info()
        assert info["cohort_merges"] <= info["divergence_splits"]
        live = {id(c) for c in runtime.cohort_of.values()}
        assert info["cohorts"] == len(live) == len(runtime.cohorts)
        # Every merge united disjoint sibling groups, and membership lists
        # stay ascending (the leader is the lowest id).
        for _when, groups in runtime.merge_log:
            flattened = [m for group in groups for m in group]
            assert len(set(flattened)) == len(flattened)
        for cohort in runtime.cohorts:
            ids = [n.node_id for n in cohort.members]
            assert ids == sorted(ids)
            for node in cohort.members:
                assert node.protocol is cohort.machine

    def test_state_signature_gates_merging(self, tiny_grid_deployment, nw_config):
        sim = build_simulation(tiny_grid_deployment, nw_config, use_cohort_runtime=True, use_soa_kernels=False)
        machine = sim.cohort_runtime.cohorts[0].machine
        signature = machine.state_signature()
        assert signature is not None
        clone = copy.deepcopy(machine, {id(machine.context): machine.context,
                                        id(machine.context.schedule): machine.context.schedule,
                                        id(machine.config): machine.config})
        assert clone.state_signature() == signature


class TestCloneForSplit:
    def test_clone_matches_deepcopy_and_is_independent(self, tiny_grid_deployment, nw_config):
        sim = build_simulation(tiny_grid_deployment, nw_config, use_cohort_runtime=True, use_soa_kernels=False)
        sim.run_slots(40)
        machine = None
        for cohort in sim.cohort_runtime.cohorts:
            if isinstance(cohort.machine, NeighborWatchNode):
                machine = cohort.machine
                break
        assert machine is not None
        clone = machine.clone_for_split()
        assert clone is not machine
        assert clone.state_signature() == machine.state_signature()
        assert clone.config is machine.config
        assert clone._schedule is machine._schedule
        assert clone._receivers.keys() == machine._receivers.keys()
        for slot, receiver in machine._receivers.items():
            assert clone._receivers[slot] is not receiver
        # Mutating the clone must not leak into the donor.
        some_slot = next(iter(clone._receivers))
        clone._receivers[some_slot]._received.append(0)
        assert clone.state_signature() != machine.state_signature()


class _ToyPhaseProtocol(PhaseDrivenProtocol, Protocol):
    """Minimal phase-driven protocol exercising the adapter mixin."""

    def __init__(self) -> None:
        self.observed: list = []
        self.ended: list = []

    def interests(self):
        return (0,)

    def phase_act(self, ctx):
        if ctx.phase == 0:
            return action_spec(FrameKind.CONTROL)
        if ctx.phase == 1:
            return OPAQUE_LISTEN
        return None

    def phase_observe(self, ctx, observation):
        self.observed.append((ctx.phase, observation.busy))

    @property
    def delivered(self) -> bool:
        return False


class TestPhaseDrivenAdapters:
    def test_act_adapter_materialises_frames_and_masks_opaque(self):
        import numpy as np

        from repro.core.protocol import NodeContext, SILENCE
        from repro.core.schedule import NodeSchedule

        schedule = NodeSchedule(
            np.asarray([[0.0, 0.0], [1.0, 0.0]]), 2.0, 0, separation=6.0
        )
        proto = _ToyPhaseProtocol()
        proto.setup(NodeContext(
            node_id=7, position=(0.0, 0.0), radius=1.0,
            schedule=schedule, message_length=1,
            is_source=False, source_message=None,
        ))
        frame = proto.act(0, 0, 0)
        assert frame is not None and frame.sender == 7 and frame.kind is FrameKind.CONTROL
        assert proto.act(0, 0, 1) is None  # OPAQUE_LISTEN listens on-air
        assert proto.act(0, 0, 2) is None
        proto.observe(0, 0, 2, SILENCE)
        assert proto.observed == [(2, False)]
        proto.end_slot(0, 0)  # default phase_end: no-op, must not recurse
