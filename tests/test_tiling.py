"""Spatially-tiled engine core: knobs, counters and sparse-round equivalence.

PR 6 added the sparse CSR link-state tier with per-region tiling
(`repro.sim.linkstate` / `repro.sim.tiling`) behind the engine's
``use_spatial_tiling`` knob.  These tests pin the control surface (env
defaults, auto threshold, `plan_cache_info()["spatial_tiling"]` counters, the
memory budget guard) and the bit-identity of the CSR round kernel against the
dense kernels it replaces — including the RNG stream position for lossy
configurations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import Frame, FrameKind
from repro.sim.builder import build_simulation
from repro.sim.config import ScenarioConfig, dense_link_state_bytes
from repro.sim.engine import (
    SPATIAL_TILING_AUTO_NODES,
    Simulation,
    clear_link_cache,
    default_spatial_tiling,
)
from repro.sim.linkstate import SparseLinkState, UnitDiskLinkState
from repro.sim.radio import Transmission, UnitDiskChannel
from repro.topology.deployment import uniform_deployment


class TestSpatialTilingDefault:
    def test_env_forces_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "1")
        assert default_spatial_tiling(2)
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "true")
        assert default_spatial_tiling(2)

    def test_env_forces_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "0")
        assert not default_spatial_tiling(10**6)
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "off")
        assert not default_spatial_tiling(10**6)

    def test_auto_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPATIAL_TILING", raising=False)
        monkeypatch.delenv("REPRO_SPATIAL_TILING_AUTO_NODES", raising=False)
        assert not default_spatial_tiling(SPATIAL_TILING_AUTO_NODES)
        assert default_spatial_tiling(SPATIAL_TILING_AUTO_NODES + 1)

    def test_auto_threshold_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "auto")
        monkeypatch.setenv("REPRO_SPATIAL_TILING_AUTO_NODES", "100")
        assert default_spatial_tiling(101)
        assert not default_spatial_tiling(100)

    def test_unparsable_override_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "auto")
        monkeypatch.setenv("REPRO_SPATIAL_TILING_AUTO_NODES", "not-a-number")
        assert not default_spatial_tiling(SPATIAL_TILING_AUTO_NODES)
        assert default_spatial_tiling(SPATIAL_TILING_AUTO_NODES + 1)


class TestDenseLinkStateBytes:
    def test_unitdisk_one_byte_per_pair(self):
        assert dense_link_state_bytes(100, "unitdisk") == 100 * 100

    def test_friis_eight_bytes_per_pair(self):
        assert dense_link_state_bytes(100, "friis") == 100 * 100 * 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dense_link_state_bytes(-1, "unitdisk")


def _build(deployment, config, tiled):
    clear_link_cache()
    # The SoA tier bypasses per-round link-state resolution entirely; these
    # tests exercise the tiled round kernels and their counters, so they pin
    # the cohort/scalar tiers.
    return build_simulation(
        deployment, config, use_spatial_tiling=tiled, use_soa_kernels=False
    )


class TestEngineIntegration:
    @pytest.fixture
    def deployment(self):
        return uniform_deployment(150, 12, 12, rng=5)

    @pytest.fixture
    def config(self):
        return ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=3, seed=11)

    def test_dense_path_reports_disabled(self, deployment, config):
        sim = _build(deployment, config, False)
        assert sim.plan_cache_info()["spatial_tiling"] == {"enabled": False}
        assert sim.tiling is None

    def test_tiled_path_reports_counters(self, deployment, config):
        sim = _build(deployment, config, True)
        info = sim.plan_cache_info()["spatial_tiling"]
        assert info["enabled"]
        assert info["sparse_round_kernel"]
        assert info["tiles"] >= info["occupied_tiles"] > 1
        assert info["sparse_nnz"] < 150 * 150
        assert info["interior_links"] + info["boundary_links"] == info["sparse_nnz"] - 150
        # At 150 nodes the int64 CSR can outweigh the 1-byte dense mask — the
        # counter is honest about that; it only grows at scale (the friis test
        # below and the BENCH_6 macros check the positive case).
        assert info["dense_bytes_avoided"] >= 0
        assert info["rounds_resolved"] == 0
        sim.run(600)
        after = sim.plan_cache_info()["spatial_tiling"]
        assert after["rounds_resolved"] > 0
        assert after["round_interior_hits"] + after["round_boundary_hits"] > 0

    def test_tiled_run_bit_identical_to_dense(self, deployment, config):
        records = {}
        for tiled in (False, True):
            sim = _build(deployment, config, tiled)
            records[tiled] = (sim.run(2000).to_record(), sim.rng.random())
        assert records[True] == records[False]

    def test_cohort_runtime_reports_cross_region_cohorts(self, deployment, config):
        sim = _build(deployment, config, True)
        info = sim.plan_cache_info()["cohort_runtime"]
        if info.get("enabled"):
            assert "cross_region_cohorts" in info
            assert 0 <= info["cross_region_cohorts"] <= info["initial_cohorts"]

    def test_env_default_is_honored(self, deployment, config, monkeypatch):
        monkeypatch.setenv("REPRO_SPATIAL_TILING", "1")
        clear_link_cache()
        sim = build_simulation(deployment, config)
        assert sim.use_spatial_tiling
        assert isinstance(sim._link_state, SparseLinkState)

    def test_friis_tiled_uses_submatrix_path(self, deployment):
        config = ScenarioConfig(
            protocol="neighborwatch", radius=3.0, message_length=3, seed=11, channel="friis"
        )
        sim = _build(deployment, config, True)
        info = sim.plan_cache_info()["spatial_tiling"]
        assert info["enabled"]
        assert not info["sparse_round_kernel"]
        assert info["dense_bytes_avoided"] > 0  # friis dense is 8 bytes/pair

    def test_region_records_group_participants_by_tile(self, deployment, config):
        sim = _build(deployment, config, True)
        records = sim.plan.region_records(sim.tiling)
        tile_of = sim.tiling.tile_of
        for slot, ids in sim.plan.participant_arrays.items():
            by_tile = records[slot]
            regrouped = np.concatenate([v for v in by_tile.values()]) if by_tile else np.array([])
            assert sorted(regrouped.tolist()) == sorted(ids.tolist())
            for tile, members in by_tile.items():
                assert set(tile_of[members].tolist()) == {tile}
                # Participant order is preserved within each tile.
                order = {int(n): i for i, n in enumerate(ids.tolist())}
                ranks = [order[int(m)] for m in members.tolist()]
                assert ranks == sorted(ranks)


class TestSparseRoundKernel:
    """The CSR round kernel must match the dense vectorized kernel bit for bit
    (observations and RNG stream position) on randomized rounds."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_nodes=st.integers(8, 40),
        num_tx=st.integers(1, 5),
        loss=st.sampled_from([0.0, 0.25, 0.9]),
        norm=st.sampled_from(["l2", "linf"]),
    )
    def test_matches_dense_kernel(self, seed, num_nodes, num_tx, loss, norm):
        layout_rng = np.random.default_rng(seed)
        positions = np.round(layout_rng.uniform(0, 12, size=(num_nodes, 2)) * 2) / 2
        num_tx = min(num_tx, num_nodes - 1)
        tx_ids = sorted(layout_rng.choice(num_nodes, size=num_tx, replace=False).tolist())
        listeners = [i for i in range(num_nodes) if i not in tx_ids]
        transmissions = [
            Transmission(t, (float(positions[t, 0]), float(positions[t, 1])),
                         Frame(FrameKind.DATA_BIT, t, (t % 2,)))
            for t in tx_ids
        ]
        chan = UnitDiskChannel(3.0, loss_probability=loss, norm=norm)
        assert chan.supports_sparse_rounds()
        dense_state = chan.link_state(positions)
        sparse_state = chan.link_state_sparse(positions)
        view = sparse_state.round_view(listeners, tx_ids)
        rng_dense = np.random.default_rng(seed)
        rng_sparse = np.random.default_rng(seed)
        dense_obs = chan.resolve_links(
            dense_state[np.ix_(listeners, tx_ids)], transmissions, rng_dense
        )
        sparse_obs = chan.resolve_links_sparse(view, transmissions, rng_sparse)
        assert sparse_obs == dense_obs
        assert rng_dense.random() == rng_sparse.random()

    def test_round_view_counts_match_dense_mask(self):
        rng = np.random.default_rng(4)
        positions = rng.uniform(0, 20, size=(200, 2))
        chan = UnitDiskChannel(3.0)
        dense = chan.link_state(positions)
        sparse = chan.link_state_sparse(positions)
        assert isinstance(sparse, UnitDiskLinkState)
        senders = [3, 77, 140]
        listeners = [i for i in range(200) if i not in senders]
        view = sparse.round_view(listeners, senders)
        block = dense[np.ix_(listeners, senders)]
        assert np.array_equal(view.counts, block.sum(axis=1))
        singles = view.counts == 1
        assert np.array_equal(view.tx_sum[singles], np.argmax(block, axis=1)[singles])

    def test_round_view_exchange_counters_accumulate(self):
        rng = np.random.default_rng(6)
        positions = rng.uniform(0, 15, size=(100, 2))
        chan = UnitDiskChannel(3.0)
        sparse = chan.link_state_sparse(positions)
        view = sparse.round_view(list(range(1, 100)), [0])
        audible = int(view.counts.sum())
        assert view.interior_hits + view.boundary_hits == audible
        assert sparse.rounds_resolved == 0
        sparse.note_round(view)
        sparse.note_round(view)
        assert sparse.rounds_resolved == 2
        assert sparse.round_interior_hits == 2 * view.interior_hits
        assert sparse.round_boundary_hits == 2 * view.boundary_hits


class TestPlanRoundViewCache:
    def test_round_views_share_the_submatrix_lru(self):
        rng = np.random.default_rng(8)
        positions = rng.uniform(0, 10, size=(30, 2))
        chan = UnitDiskChannel(3.0)
        sparse = chan.link_state_sparse(positions)
        nodes = []
        from repro.sim.node import SimNode

        for i in range(30):
            nodes.append(SimNode(node_id=i, position=tuple(positions[i]), protocol=None, honest=True))
        from repro.core.schedule import Schedule

        class _OneSlot(Schedule):
            def slot_of_node(self, node_id):
                return 0

            def owners_of_slot(self, slot):
                return ()

        plan_sim = Simulation(nodes, _OneSlot(num_slots=1), chan, (1,))
        plan = plan_sim.plan
        key = ("occ", (0,))
        view1 = plan.round_view(key, sparse, [1, 2, 3], [0])
        view2 = plan.round_view(key, sparse, [1, 2, 3], [0])
        assert view1 is view2
        assert plan.submatrix_misses == 1
        assert plan.submatrix_hits == 1
        # The exchange counters accumulate on hits too.
        assert sparse.rounds_resolved == 2


class TestCsrIndexDtype:
    """PR 7 halves the CSR pair to int32 whenever node count and link count
    both fit; the values are identical and the overflow guard keeps int64
    available past 2^31 - 1."""

    def test_small_topologies_use_int32(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 15, size=(120, 2))
        sparse = UnitDiskChannel(3.0).link_state_sparse(positions)
        assert sparse.indices.dtype == np.int32
        assert sparse.indptr.dtype == np.int32
        assert sparse.info()["index_dtype"] == "int32"
        assert sparse.sparse_bytes == (
            sparse.indices.nbytes + sparse.indptr.nbytes + sparse.positions.nbytes
        )

    def test_downcast_preserves_values(self):
        from repro.topology.grid import GridBuckets

        rng = np.random.default_rng(9)
        positions = rng.uniform(0, 15, size=(150, 2))
        sparse = UnitDiskChannel(3.0).link_state_sparse(positions)
        indptr, indices = GridBuckets(positions, cell_size=3.0).neighbor_arrays(
            3.0 + 1e-12, "l2", include_self=True
        )
        assert np.array_equal(sparse.indptr, indptr)
        assert np.array_equal(sparse.indices, indices)

    def test_overflow_guard_falls_back_to_int64(self):
        from repro.sim.linkstate import _index_dtype

        limit = int(np.iinfo(np.int32).max)
        assert _index_dtype(limit, limit) == np.dtype(np.int32)
        assert _index_dtype(limit + 1, 0) == np.dtype(np.int64)
        assert _index_dtype(10, limit + 1) == np.dtype(np.int64)


class TestDescribeMemoryEstimate:
    def test_describe_mentions_memory_and_tiling(self):
        from repro.experiments.registry import get_spec
        from repro.experiments.driver import describe_spec

        text = describe_spec(get_spec("JAM"))
        assert "dense unitdisk link state" in text
        assert "spatial tiling" in text.lower()
