"""Concurrency discipline of the shared result store.

The service fabric's byte-identity contract rests on three store properties:

* interleaved writers — store instances in different processes appending to
  the same cache directory — never produce torn lines or (under the
  contains-guard discipline every writer uses) duplicate records;
* a reader instance observes another writer's appends without reopening
  (per-shard freshness stamps);
* a warm rerun answers entirely from the store, dispatching zero simulations,
  and returns records byte-identical to the cold run.
"""

from __future__ import annotations

import json
import multiprocessing
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.experiments.factories import RandomLiarFactory, UniformDeploymentFactory
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepExecutor, SweepTask, run_repetition
from repro.store import CachingSweepExecutor, SharedResultStore, scan_store


def tiny_task(repetitions: int = 1) -> SweepTask:
    return SweepTask(
        label="store-concurrency",
        deployment_factory=UniformDeploymentFactory(25, 5.0, 5.0),
        config=ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=2),
        fault_factory=RandomLiarFactory(1),
        repetitions=repetitions,
        base_seed=7,
    )


_RESULT = None


def shared_result():
    """One real RunResult, computed once — puts need a record, not a new sim."""
    global _RESULT
    if _RESULT is None:
        _RESULT = run_repetition(tiny_task(), 0)
    return _RESULT


def shard_lines(cache_dir) -> list[dict]:
    return [
        json.loads(line)
        for shard in sorted((Path(cache_dir) / "shards").glob("*.jsonl"))
        for line in shard.read_text().splitlines()
        if line.strip()
    ]


def fingerprint_for(index: int) -> str:
    # Spread across shards: the shard key is the first two hex characters.
    return f"{index % 256:02x}{index:060x}"


# -- hypothesis: interleaved writers under the contains-guard discipline ------------------
@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=11)),
        min_size=1,
        max_size=40,
    )
)
def test_interleaved_writers_never_tear_or_duplicate(ops):
    result = shared_result()
    with tempfile.TemporaryDirectory() as cache_dir:
        writers = [SharedResultStore(cache_dir) for _ in range(3)]
        written: set[str] = set()
        for writer_index, key_index in ops:
            fingerprint = fingerprint_for(key_index)
            store = writers[writer_index]
            # The discipline every service writer follows: check, then append.
            if not store.contains(fingerprint):
                store.put(fingerprint, result)
            written.add(fingerprint)

        lines = shard_lines(cache_dir)
        assert sorted(line["fp"] for line in lines) == sorted(written)
        assert all(report.damaged_lines == 0 for report in scan_store(cache_dir))
        # Every writer instance — and a fresh reader — sees every record.
        reader = SharedResultStore(cache_dir, readonly=True)
        expected = json.dumps(result.to_record(), sort_keys=True)
        for fingerprint in written:
            for store in (*writers, reader):
                loaded = store.get(fingerprint)
                assert loaded is not None
                assert json.dumps(loaded.to_record(), sort_keys=True) == expected


def test_freshness_stamps_expose_other_writers_appends(tmp_path):
    result = shared_result()
    writer_a = SharedResultStore(tmp_path)
    writer_b = SharedResultStore(tmp_path)
    first = fingerprint_for(0)
    second = fingerprint_for(256)  # same shard as first: exercises reload
    writer_a.put(first, result)
    assert writer_b.contains(first)  # b loads the shard a wrote
    writer_b.put(second, result)
    # a's in-memory shard index predates b's append; the stamp must expire it.
    assert writer_a.contains(second)
    assert len(shard_lines(tmp_path)) == 2


# -- real processes -----------------------------------------------------------------------
def _append_batch(cache_dir: str, start: int, count: int, result) -> None:
    store = SharedResultStore(cache_dir)
    for index in range(start, start + count):
        fingerprint = fingerprint_for(index)
        if not store.contains(fingerprint):
            store.put(fingerprint, result)


def test_multiprocess_writers_land_every_record_intact(tmp_path):
    result = shared_result()
    per_process = 20
    processes = [
        multiprocessing.Process(
            target=_append_batch, args=(str(tmp_path), rank * per_process, per_process, result)
        )
        for rank in range(4)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    lines = shard_lines(tmp_path)
    fingerprints = [line["fp"] for line in lines]
    assert len(fingerprints) == 4 * per_process
    assert len(set(fingerprints)) == 4 * per_process
    assert all(report.damaged_lines == 0 for report in scan_store(tmp_path))
    reader = SharedResultStore(tmp_path, readonly=True)
    assert all(reader.contains(fingerprint) for fingerprint in fingerprints)


# -- warm reruns --------------------------------------------------------------------------
def test_warm_rerun_is_zero_dispatch_and_byte_identical(tmp_path):
    task = tiny_task(3)

    class CountingExecutor(SweepExecutor):
        dispatched = 0

        def iter_jobs(self, jobs):
            CountingExecutor.dispatched += len(jobs)
            return super().iter_jobs(jobs)

    cold_store = SharedResultStore(tmp_path)
    with CachingSweepExecutor(cold_store, CountingExecutor(0)) as cold:
        cold_results = cold.run_task(task)
    assert CountingExecutor.dispatched == 3
    assert cold_store.stats.writes == 3

    warm_store = SharedResultStore(tmp_path)
    with CachingSweepExecutor(warm_store, CountingExecutor(0)) as warm:
        warm_results = warm.run_task(task)
    assert CountingExecutor.dispatched == 3  # unchanged: zero new dispatches
    assert warm_store.stats.hits == 3 and warm_store.stats.misses == 0
    cold_bytes = [json.dumps(r.to_record(), sort_keys=True).encode() for r in cold_results]
    warm_bytes = [json.dumps(r.to_record(), sort_keys=True).encode() for r in warm_results]
    assert warm_bytes == cold_bytes
