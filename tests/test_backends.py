"""Tests for the fault-tolerant execution fabric: backends, supervision, chaos.

The load-bearing property throughout is *bit-identity under recovery*: every
repetition is a pure function of its seed, so a retried, re-dispatched or
rebuilt-pool job must reproduce exactly the bytes a fault-free serial run
produces.  The chaos backend exists to let these tests force every recovery
path deterministically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.factories import RandomLiarFactory, UniformDeploymentFactory
from repro.registry import EXECUTOR_BACKENDS, RegistryError
from repro.sim.backends import (
    ChaosBackend,
    ChaosPlan,
    FaultSpec,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepExecutor, SweepTask
from repro.sim.supervision import (
    FabricTelemetry,
    SupervisionPolicy,
    Supervisor,
    SweepFailure,
    backoff_delay,
    job_key,
)


def small_task(repetitions: int = 3, **config_overrides) -> SweepTask:
    config_kwargs = {"protocol": "neighborwatch", "radius": 3.0, "message_length": 2}
    config_kwargs.update(config_overrides)
    return SweepTask(
        label="fabric-small",
        deployment_factory=UniformDeploymentFactory(40, 6.0, 6.0),
        config=ScenarioConfig(**config_kwargs),
        fault_factory=RandomLiarFactory(2),
        repetitions=repetitions,
        base_seed=23,
    )


def baseline(task: SweepTask):
    return SweepExecutor(0).run_task(task)


class _ExplodingDeployment:
    """A deployment factory that always fails — a *deterministic* error."""

    def __call__(self, seed):
        raise ValueError("deterministic boom")


def chaos_executor(plan: ChaosPlan, *, workers: int = 0, **kwargs) -> SweepExecutor:
    """A SweepExecutor whose chaos backend wraps serial or a real pool."""
    executor = SweepExecutor(workers, **kwargs)
    if workers > 1:
        inner = ProcessPoolBackend(workers, telemetry=executor.telemetry)
    else:
        inner = SerialBackend(telemetry=executor.telemetry)
    executor._backend = ChaosBackend(inner, plan, telemetry=executor.telemetry)
    return executor


# -- backoff determinism --------------------------------------------------------------
class TestBackoff:
    @given(
        fingerprint=st.text(min_size=1, max_size=64),
        attempt=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_pure_function_of_fingerprint_and_attempt(self, fingerprint, attempt):
        policy = SupervisionPolicy(backoff_base=0.05, backoff_cap=2.0)
        first = backoff_delay(fingerprint, attempt, policy)
        second = backoff_delay(fingerprint, attempt, policy)
        assert first == second
        span = min(policy.backoff_cap, policy.backoff_base * 2.0 ** (attempt - 1))
        assert 0.5 * span <= first < span

    def test_grows_exponentially_then_caps(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_cap=0.4)
        # Compare spans (jitter divided out) so growth is exact.
        spans = [
            backoff_delay("fp", attempt, policy)
            / (backoff_delay("fp", attempt, SupervisionPolicy(backoff_base=1.0, backoff_cap=1e9)) / 2.0 ** (attempt - 1))
            for attempt in (1, 2, 3, 4)
        ]
        assert spans[0] == pytest.approx(0.1)
        assert spans[1] == pytest.approx(0.2)
        assert spans[2] == pytest.approx(0.4)
        assert spans[3] == pytest.approx(0.4)  # capped

    def test_distinct_jobs_desynchronize(self):
        policy = SupervisionPolicy()
        delays = {backoff_delay(f"job-{i}", 1, policy) for i in range(16)}
        assert len(delays) == 16

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="1-based"):
            backoff_delay("fp", 0, SupervisionPolicy())


# -- registry -------------------------------------------------------------------------
class TestBackendRegistry:
    def test_builtins_registered_with_aliases(self):
        assert EXECUTOR_BACKENDS.get("serial") is SerialBackend
        assert EXECUTOR_BACKENDS.get("inline") is SerialBackend
        assert EXECUTOR_BACKENDS.get("process-pool") is ProcessPoolBackend
        assert EXECUTOR_BACKENDS.get("pool") is ProcessPoolBackend
        assert EXECUTOR_BACKENDS.get("chaos") is ChaosBackend

    def test_unknown_key_raises(self):
        with pytest.raises(RegistryError):
            EXECUTOR_BACKENDS.get("quantum")

    def test_resolve_backend_auto_selects_from_workers(self):
        assert isinstance(resolve_backend(None, workers=0), SerialBackend)
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)
        pool = resolve_backend(None, workers=2)
        assert isinstance(pool, ProcessPoolBackend)
        pool.close()

    def test_resolve_backend_adopts_instances_and_rebinds_telemetry(self):
        from repro.sim.supervision import FabricTelemetry

        telemetry = FabricTelemetry()
        chaos = ChaosBackend(SerialBackend(), ChaosPlan())
        resolved = resolve_backend(chaos, telemetry=telemetry)
        assert resolved is chaos
        assert resolved.telemetry is telemetry
        assert resolved.inner.telemetry is telemetry


# -- supervision policy plumbing -------------------------------------------------------
class TestPolicyPlumbing:
    def test_executor_knobs_build_the_policy(self):
        executor = SweepExecutor(0, timeout=1.5, max_retries=5)
        assert executor.policy == SupervisionPolicy(timeout=1.5, max_retries=5)

    def test_explicit_policy_wins(self):
        policy = SupervisionPolicy(timeout=9.0, max_retries=0, backoff_base=0.0)
        executor = SweepExecutor(0, timeout=1.0, policy=policy)
        assert executor.policy is policy

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_retries=-1)

    def test_job_key_falls_back_for_unfingerprintable_tasks(self):
        task = SweepTask(
            label="adhoc",
            deployment_factory=lambda seed: [],
            config=ScenarioConfig(),
            repetitions=1,
            base_seed=3,
        )
        assert job_key(task, 0).startswith("unfingerprintable:adhoc:3:")
        assert job_key(task, 0) == job_key(task, 0)


# -- serial recovery paths -------------------------------------------------------------
class TestSerialRecovery:
    def test_injected_raise_is_retried_to_identical_results(self):
        task = small_task()
        plan = ChaosPlan(faults=(FaultSpec(kind="raise", position=1),))
        executor = chaos_executor(plan)
        assert executor.run_task(task) == baseline(task)
        assert executor.telemetry.retries >= 1
        assert executor.telemetry.injected == {"raise": 1}

    def test_deterministic_exception_is_not_retried(self):
        task = small_task(repetitions=2)
        bad_task = SweepTask(
            label="boom",
            deployment_factory=_ExplodingDeployment(),
            config=ScenarioConfig(),
            repetitions=1,
            base_seed=1,
        )
        executor = SweepExecutor(0)
        with pytest.raises(SweepFailure) as excinfo:
            executor.run([bad_task, task])
        # One dispatch only: a plain exception is deterministic in the seed,
        # so re-running it could only raise again.
        failures = excinfo.value.failures
        assert [f.label for f in failures] == ["boom"]
        assert failures[0].attempts == 1
        assert failures[0].kind == "exception"
        assert "deterministic boom" in failures[0].error
        assert executor.telemetry.retries == 0

    def test_exhausted_retries_quarantine_without_losing_siblings(self):
        task = small_task(repetitions=3)
        # Cover every attempt of repetition 0 so it can never succeed.
        plan = ChaosPlan(
            faults=tuple(FaultSpec(kind="raise", position=0, attempt=a) for a in range(3))
        )
        executor = chaos_executor(plan, max_retries=2)
        landed = {}
        jobs = [(task, repetition) for repetition in range(task.repetitions)]
        with pytest.raises(SweepFailure) as excinfo:
            for position, result in executor.iter_jobs(jobs):
                landed[position] = result
        # Repetitions 1 and 2 completed and were yielded before the report.
        expected = baseline(task)
        assert landed == {1: expected[1], 2: expected[2]}
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0].repetition == 0
        assert failures[0].attempts == 3
        assert failures[0].fingerprint == task.fingerprint(0)
        assert executor.failures == failures
        assert executor.telemetry.quarantined == 1

    def test_simulated_worker_kill_is_retried(self):
        task = small_task()
        plan = ChaosPlan(faults=(FaultSpec(kind="kill-worker", position=0),))
        executor = chaos_executor(plan)
        assert executor.run_task(task) == baseline(task)
        assert executor.telemetry.worker_crashes == 1

    def test_post_hoc_timeout_detection(self):
        task = small_task(repetitions=2)
        plan = ChaosPlan(faults=(FaultSpec(kind="delay", position=0, seconds=0.3),))
        executor = chaos_executor(plan, timeout=0.2)
        assert executor.run_task(task) == baseline(task)
        assert executor.telemetry.timeouts >= 1
        assert executor.telemetry.injected == {"delay": 1}


# -- deterministic chaos plans ---------------------------------------------------------
class TestChaosPlan:
    @given(seed=st.integers(min_value=0, max_value=2**32), position=st.integers(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_seeded_draw_is_deterministic(self, seed, position):
        plan = ChaosPlan(seed=seed, rate=0.5)
        assert plan.fault_for(position, 0) == plan.fault_for(position, 0)

    def test_seeded_faults_fire_only_on_first_attempt(self):
        plan = ChaosPlan(seed=7, rate=1.0)
        assert plan.fault_for(0, 0) is not None
        assert plan.fault_for(0, 1) is None  # retries recover

    def test_explicit_spec_beats_seeded_draw(self):
        spec = FaultSpec(kind="delay", position=4, attempt=2)
        plan = ChaosPlan(faults=(spec,), seed=7, rate=1.0)
        assert plan.fault_for(4, 2) is spec

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", position=0)

    def test_from_env_plan_file(self, tmp_path, monkeypatch):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('[{"kind": "raise", "position": 2}]')
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan_file))
        plan = ChaosPlan.from_env()
        assert plan.faults == (FaultSpec(kind="raise", position=2),)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_seeded_chaos_sweep_is_bit_identical_to_fault_free(self, seed):
        task = small_task(repetitions=2)
        plan = ChaosPlan(seed=seed, rate=0.6, kinds=("raise", "kill-worker"))
        executor = chaos_executor(plan)
        assert executor.run_task(task) == baseline(task)


# -- process-pool recovery paths -------------------------------------------------------
class TestProcessPoolRecovery:
    def test_real_worker_kill_rebuilds_pool_and_reproduces_results(self):
        task = small_task(repetitions=4)
        plan = ChaosPlan(faults=(FaultSpec(kind="kill-worker", position=0),))
        executor = chaos_executor(plan, workers=2, timeout=60)
        try:
            assert executor.run_task(task) == baseline(task)
        finally:
            executor.close()
        assert executor.telemetry.pool_rebuilds >= 1
        assert executor.telemetry.worker_crashes >= 1
        assert executor.telemetry.injected == {"kill-worker": 1}

    def test_overdue_worker_abandoned_and_job_retried(self):
        task = small_task(repetitions=3)
        plan = ChaosPlan(faults=(FaultSpec(kind="delay", position=1, seconds=0.4),))
        executor = chaos_executor(plan, workers=2, timeout=0.25)
        try:
            assert executor.run_task(task) == baseline(task)
        finally:
            executor.close()
        assert executor.telemetry.timeouts >= 1

    def test_unbuildable_pool_degrades_to_serial(self, monkeypatch):
        import repro.sim.backends as backends_module

        def refuse(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", refuse)
        task = small_task(repetitions=2)
        executor = SweepExecutor(2)
        try:
            assert executor.run_task(task) == baseline(task)
            assert executor.backend.degraded
        finally:
            executor.close()
        assert executor.telemetry.degraded_to_serial == 1

    def test_close_cancels_queued_futures(self):
        shutdowns = []

        class FakePool:
            def shutdown(self, wait, cancel_futures):
                shutdowns.append({"wait": wait, "cancel_futures": cancel_futures})

        backend = ProcessPoolBackend(2)
        backend._pool = FakePool()
        backend.close()
        assert shutdowns == [{"wait": True, "cancel_futures": True}]
        assert backend._pool is None
        backend.close()  # idempotent
        assert shutdowns == [{"wait": True, "cancel_futures": True}]

    def test_executor_close_and_context_manager_release_the_pool(self):
        task = small_task(repetitions=2)
        with SweepExecutor(2) as executor:
            executor.run_task(task)
            assert executor._pool is not None
            first_pool = executor._pool
            executor.run_task(task)
            assert executor._pool is first_pool  # reused across runs
        assert executor._pool is None
        executor.close()  # idempotent after __exit__


# -- supervisor mechanics --------------------------------------------------------------
class TestSupervisor:
    def test_retry_schedule_is_reproducible(self):
        """Two identical sweeps accumulate exactly the same backoff seconds:
        the schedule is a pure function of the job fingerprints."""
        task = small_task(repetitions=2)
        plan = ChaosPlan(faults=(FaultSpec(kind="raise", position=0),))
        totals = []
        for _ in range(2):
            executor = chaos_executor(plan)
            executor.run_task(task)
            totals.append(executor.telemetry.backoff_seconds)
        assert totals[0] == totals[1] > 0.0

    def test_attempt_numbers_increment_across_waves(self):
        seen = []

        class Recorder(SerialBackend):
            def run_attempts(self, attempts, *, timeout=None):
                seen.extend((a.position, a.attempt) for a in attempts)
                yield from super().run_attempts(attempts, timeout=timeout)

        task = small_task(repetitions=1)
        plan = ChaosPlan(
            faults=(
                FaultSpec(kind="raise", position=0, attempt=0),
                FaultSpec(kind="raise", position=0, attempt=1),
            )
        )
        executor = SweepExecutor(0, max_retries=3)
        executor._backend = ChaosBackend(
            Recorder(telemetry=executor.telemetry), plan, telemetry=executor.telemetry
        )
        executor.run_task(task)
        assert seen == [(0, 0), (0, 1), (0, 2)]

    def test_supervisor_yields_in_completion_order_with_positions(self):
        task = small_task(repetitions=3)
        supervisor = Supervisor(SerialBackend(), SupervisionPolicy(), FabricTelemetry())
        jobs = [(task, repetition) for repetition in range(3)]
        positions = [position for position, _ in supervisor.run(jobs)]
        assert positions == [0, 1, 2]
        assert supervisor.failures == []


# -- CLI knobs -------------------------------------------------------------------------
class TestFabricCli:
    def run_cli(self, capsys, *argv) -> tuple[int, str, str]:
        code = experiments_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_unknown_backend_is_a_usage_error(self, capsys):
        code, _, err = self.run_cli(
            capsys, "run", "DUAL", "--scale", "small", "--backend", "quantum"
        )
        assert code == 2
        assert "quantum" in err

    def test_invalid_timeout_and_retries_are_usage_errors(self, capsys):
        code, _, err = self.run_cli(
            capsys, "run", "DUAL", "--scale", "small", "--timeout", "0"
        )
        assert code == 2
        assert "--timeout" in err
        code, _, err = self.run_cli(
            capsys, "run", "DUAL", "--scale", "small", "--max-retries", "-1"
        )
        assert code == 2
        assert "--max-retries" in err

    def test_chaos_backend_export_matches_plain_run(self, tmp_path, capsys, monkeypatch):
        code, plain, _ = self.run_cli(
            capsys, "run", "DUAL", "--scale", "small", "--export", "json"
        )
        assert code == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            '[{"kind": "raise", "position": 0}, {"kind": "kill-worker", "position": 1}]'
        )
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan_file))
        code, chaotic, err = self.run_cli(
            capsys,
            "run",
            "DUAL",
            "--scale",
            "small",
            "--backend",
            "chaos",
            "--timeout",
            "60",
            "--max-retries",
            "3",
            "--export",
            "json",
        )
        assert code == 0
        assert chaotic == plain
        assert "injected=" in err  # recovery telemetry reported
