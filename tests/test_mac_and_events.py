"""Unit tests for the carrier-sensing MAC resolution and the event log."""

from __future__ import annotations

import pytest

from repro.core.messages import Frame, FrameKind
from repro.core.protocol import ChannelState
from repro.sim.events import EventKind, EventLog
from repro.sim.mac import resolve_observation


class TestResolveObservation:
    def test_silence(self):
        obs = resolve_observation([])
        assert obs.state is ChannelState.SILENT
        assert not obs.busy

    def test_single_decoded_frame(self):
        frame = Frame(FrameKind.DATA_BIT, 1)
        obs = resolve_observation([frame], decoded_index=0)
        assert obs.state is ChannelState.MESSAGE
        assert obs.decoded is frame

    def test_collision_when_nothing_decodable(self):
        frames = [Frame(FrameKind.DATA_BIT, 1), Frame(FrameKind.JAM, 2)]
        obs = resolve_observation(frames)
        assert obs.state is ChannelState.COLLISION
        assert obs.busy
        assert obs.decoded is None

    def test_energy_override(self):
        obs = resolve_observation([], energy_detected=True)
        assert obs.state is ChannelState.COLLISION

    def test_energy_override_false(self):
        obs = resolve_observation([Frame(FrameKind.JAM, 1)], energy_detected=False)
        assert obs.state is ChannelState.SILENT

    def test_decoded_index_out_of_range(self):
        with pytest.raises(ValueError):
            resolve_observation([Frame(FrameKind.DATA_BIT, 1)], decoded_index=2)


class TestEventLog:
    def test_record_and_len(self):
        log = EventLog()
        log.record(EventKind.NOTE, 0, None, "hello")
        log.record(EventKind.BROADCAST, 3, 7, "slot", 2)
        assert len(log) == 2

    def test_filter_by_kind(self):
        log = EventLog()
        log.record(EventKind.BROADCAST, 1, 1)
        log.record(EventKind.DELIVERY, 2, 1)
        log.record(EventKind.DELIVERY, 3, 2)
        assert len(log.deliveries()) == 2
        assert len(log.filter(kind=EventKind.BROADCAST)) == 1

    def test_filter_by_node(self):
        log = EventLog()
        log.record(EventKind.BROADCAST, 1, 1)
        log.record(EventKind.BROADCAST, 2, 2)
        assert len(log.broadcasts_by(1)) == 1

    def test_filter_with_predicate(self):
        log = EventLog()
        for r in range(10):
            log.record(EventKind.NOTE, r)
        assert len(log.filter(predicate=lambda e: e.round_index >= 5)) == 5

    def test_max_events_drops(self):
        log = EventLog(max_events=2)
        for r in range(5):
            log.record(EventKind.NOTE, r)
        assert len(log) == 2
        assert log.dropped == 3

    def test_clear(self):
        log = EventLog()
        log.record(EventKind.NOTE, 0)
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_event_str(self):
        log = EventLog()
        log.record(EventKind.DELIVERY, 12, 3)
        text = str(list(log)[0])
        assert "r12" in text and "delivery" in text

    def test_iteration_order(self):
        log = EventLog()
        for r in (3, 1, 2):
            log.record(EventKind.NOTE, r)
        assert [e.round_index for e in log] == [3, 1, 2]
